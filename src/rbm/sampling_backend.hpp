/**
 * @file
 * Unified conditional-sampling interface over an RBM energy landscape.
 *
 * The repo previously carried three divergent copies of the block-Gibbs
 * half-sweeps: the software chain (rbm/gibbs.cpp), the clamped
 * resampling loop (rbm/sampling.cpp) and the fabric settle loop inside
 * the GS accelerator.  All of them are the same two operations --
 * latch h given v, latch v given h -- differing only in *what*
 * evaluates the conditional: exact sigmoid math or the noisy analog
 * substrate.  SamplingBackend captures exactly that surface, so every
 * chain, sampler and app can swap exact software sampling for
 * noisy-fabric sampling via configuration instead of bespoke code
 * (SoftwareGibbsBackend here; accel::AnalogFabricBackend for the
 * substrate).
 *
 * Batched surface: every workload that matters runs *many* chains at
 * once (minibatch positions, PCD particles, fantasy fan-outs), so the
 * interface also exposes whole-minibatch half-sweeps over (batch x
 * units) matrices with one RNG stream per chain row.  The defaults
 * fan the rows over the worker pool through the scalar methods, so
 * backends whose physics sample one state at a time (the analog
 * fabric) work unchanged; SoftwareGibbsBackend overrides them with
 * bit-packed cache-tiled kernels that are bit-identical to the scalar
 * path (see linalg/bitops.hpp for the reproducibility contract).
 */

#ifndef ISINGRBM_RBM_SAMPLING_BACKEND_HPP
#define ISINGRBM_RBM_SAMPLING_BACKEND_HPP

#include "exec/thread_pool.hpp"
#include "linalg/bits.hpp"
#include "linalg/simd_dispatch.hpp"
#include "rbm/rbm.hpp"

namespace ising::rbm {

/**
 * Tuning knobs for the software sampling kernels.
 *
 * The batched software backend picks between two bit-identical kernel
 * shapes per call: the dense packed tiled walk (every word of every
 * row scanned, W tiles cache-reused across chains) and the
 * sparse-streamed walk (per-row active-index lists, only active rows
 * gathered).  The crossover depends on the host's relative cost of
 * word scans vs gathered row adds, so the default threshold is
 * calibrated once per process by a micro-probe at first backend
 * construction; set @p sparseThreshold to override it.
 */
struct SamplingOptions
{
    /**
     * Batch activity (set bits / total bits) at or below which the
     * sparse-streamed kernels run.  Negative selects the calibrated
     * default (overridable by ISINGRBM_SPARSE_THRESHOLD); 0 effectively
     * disables the sparse path (only exactly empty batches qualify); 1
     * forces it for every binary batch.
     */
    double sparseThreshold = -1.0;

    /**
     * SIMD kernel tier for the packed hot path.  Auto defers to the
     * ISINGRBM_ISA environment variable and then the CPUID probe
     * (precedence: env < this field < the CLI --isa flag, which writes
     * this field); Scalar forces the float pipeline (no packed
     * kernels at all); Generic/Avx2/Avx512 pin a kernel table.  Every
     * tier is bit-identical, so this knob moves time, never results.
     */
    linalg::simd::IsaTier isa = linalg::simd::IsaTier::Auto;
};

/**
 * The kernel tier @p opts resolves to: the field when it names a tier
 * this build/host can run (warns and falls back otherwise), else the
 * simd::defaultTier() chain (ISINGRBM_ISA env, then CPUID).  Never
 * returns Auto.
 */
linalg::simd::IsaTier resolveIsaTier(const SamplingOptions &opts);

/**
 * The activity threshold @p opts resolves to: the override when
 * non-negative, else the ISINGRBM_SPARSE_THRESHOLD environment pin,
 * else the micro-probe calibration for the resolved kernel tier (run
 * once per tier, cached; the crossover moves with the dense kernels'
 * speed, so each tier gets its own probe).  Shared by the backend
 * dispatcher and CdTrainer's gradient-reduce dispatch so both switch
 * tiers at the same point.
 */
double resolveSparseThreshold(const SamplingOptions &opts);

/** One conditional-sampling engine: the two Gibbs half-sweeps. */
class SamplingBackend
{
  public:
    virtual ~SamplingBackend() = default;

    virtual std::size_t numVisible() const = 0;
    virtual std::size_t numHidden() const = 0;

    /** Human-readable backend tag for logs and tables. */
    virtual const char *name() const = 0;

    /**
     * Latch a binary hidden sample h given visible levels v.  @p ph
     * receives the per-unit means the backend sampled from; backends
     * whose physics only expose latched bits (the analog fabric)
     * report the sample itself.
     */
    virtual void sampleHidden(const linalg::Vector &v, linalg::Vector &h,
                              linalg::Vector &ph,
                              util::Rng &rng) const = 0;

    /** Mirror half-sweep: latch visible sample v given hidden bits h. */
    virtual void sampleVisible(const linalg::Vector &h, linalg::Vector &v,
                               linalg::Vector &pv,
                               util::Rng &rng) const = 0;

    /**
     * Free-running evolution: @p steps alternating v|h -> h|v sweeps
     * from the current hidden state -- the negative-phase random walk
     * of CD, PCD, GS and BGF alike.  The default implementation is the
     * alternating loop every current backend uses.
     */
    virtual void anneal(int steps, linalg::Vector &v, linalg::Vector &h,
                        linalg::Vector &pv, linalg::Vector &ph,
                        util::Rng &rng) const;

    /**
     * Batched half-sweep: row r of @p h / @p ph is the hidden sample /
     * conditional means for visible state row r of @p v, with rngs[r]
     * driving chain r (one stream per row keeps results reproducible
     * for any worker count).  Outputs are resized to (v.rows() x
     * numHidden()).  Default: scalar sampleHidden per row, fanned over
     * the worker pool.
     */
    virtual void sampleHiddenBatch(const linalg::Matrix &v,
                                   linalg::Matrix &h, linalg::Matrix &ph,
                                   util::Rng *rngs) const;

    /** Mirror batched half-sweep: visible rows from hidden rows. */
    virtual void sampleVisibleBatch(const linalg::Matrix &h,
                                    linalg::Matrix &v, linalg::Matrix &pv,
                                    util::Rng *rngs) const;

    /**
     * Batched free-running evolution: @p steps alternating sweeps of
     * every chain row from its current hidden state, rngs[r] driving
     * row r.  @p v / @p pv / @p ph are resized and overwritten with
     * the final samples and last-sweep means; with steps <= 0 nothing
     * runs and no output is touched.  Default: scalar anneal per row,
     * fanned over the worker pool.
     */
    virtual void annealBatch(int steps, linalg::Matrix &v,
                             linalg::Matrix &h, linalg::Matrix &pv,
                             linalg::Matrix &ph, util::Rng *rngs) const;

    /**
     * Packed-input batched half-sweep: like sampleHiddenBatch, but the
     * visible rows arrive bit-packed (as the serving path gathers
     * them) and the sampled hidden bits stay packed in @p h; only the
     * conditional means @p ph materialize as floats.  Binary states
     * pack losslessly, so the default -- unpack to a float staging
     * batch, run the float batched half-sweep, repack the sample --
     * serves backends without packed kernels (the analog fabric)
     * unchanged and bit-identically to their float surface.
     */
    virtual void sampleHiddenBatchPacked(const linalg::BitMatrix &v,
                                         linalg::BitMatrix &h,
                                         linalg::Matrix &ph,
                                         util::Rng *rngs) const;

    /** Mirror packed half-sweep: packed visible from packed hidden. */
    virtual void sampleVisibleBatchPacked(const linalg::BitMatrix &h,
                                          linalg::BitMatrix &v,
                                          linalg::Matrix &pv,
                                          util::Rng *rngs) const;

  protected:
    /**
     * Pool the batched default implementations fan rows over; nullptr
     * selects exec::globalPool().  Backends with a configured pool
     * override this so scalar fallbacks honor it too.
     */
    virtual exec::ThreadPool *batchPool() const { return nullptr; }
};

/**
 * Exact software sampling: conditionals evaluated in float math via
 * the blocked linalg kernels, with bit-packed fast paths for binary
 * states.
 *
 * The visible half-sweep runs off a transpose of W cached at
 * construction/setModel() time, so both directions traverse contiguous
 * rows and skip zero entries of the (binary) input state.  Re-run
 * setModel() after mutating the model's weights.
 *
 * The batched methods and anneal() pack binary states one unit per
 * bit and run the linalg/bitops.hpp kernels: conditional row adds
 * over packed words, cache-tiled over the minibatch, threaded over
 * chains when the batch is deep and over units within the sweep when
 * it is shallow.  Both layouts and both threading shapes produce
 * bit-identical chains to the scalar float path (the kernels share
 * its addition order and RNG consumption order); non-binary inputs
 * fall back to the float path transparently.
 *
 * Sparsity dispatch: every packed half-sweep first probes the batch's
 * activity (popcount over the already-packed words) and streams the
 * sparse active-index kernels instead of the dense tiled walk when it
 * falls at or below the SamplingOptions threshold -- per (batch,
 * direction), so a sparse data sweep and a dense hidden sweep of the
 * same chain each get the right kernel.  Sparse and dense paths are
 * bit-identical (same addition order, same draws), so the dispatch
 * decision never changes results, only speed.
 */
class SoftwareGibbsBackend final : public SamplingBackend
{
  public:
    /**
     * @param model sampled model (borrowed; must outlive the backend)
     * @param pool pool for the batched kernels (borrowed; nullptr
     *        selects exec::globalPool())
     * @param options kernel tuning (sparse crossover threshold)
     */
    explicit SoftwareGibbsBackend(const Rbm &model,
                                  exec::ThreadPool *pool = nullptr,
                                  SamplingOptions options = {});

    /** Re-point at a model and refresh the cached transpose. */
    void setModel(const Rbm &model);

    std::size_t numVisible() const override { return model_->numVisible(); }
    std::size_t numHidden() const override { return model_->numHidden(); }
    const char *name() const override { return "software"; }

    /** The resolved dense/sparse crossover activity this backend uses. */
    double sparseThreshold() const { return threshold_; }

    /** The resolved kernel tier (never Auto). */
    linalg::simd::IsaTier isaTier() const { return isa_; }

    /**
     * The kernel table the packed paths run, or nullptr when the
     * resolved tier is Scalar (every batched call then takes the
     * float fallback route through the base class).
     */
    const linalg::simd::KernelTable *kernelTable() const { return kt_; }

    void sampleHidden(const linalg::Vector &v, linalg::Vector &h,
                      linalg::Vector &ph, util::Rng &rng) const override;
    void sampleVisible(const linalg::Vector &h, linalg::Vector &v,
                       linalg::Vector &pv, util::Rng &rng) const override;

    /** Packed scalar chain: state stays bit-packed across all sweeps. */
    void anneal(int steps, linalg::Vector &v, linalg::Vector &h,
                linalg::Vector &pv, linalg::Vector &ph,
                util::Rng &rng) const override;

    void sampleHiddenBatch(const linalg::Matrix &v, linalg::Matrix &h,
                           linalg::Matrix &ph,
                           util::Rng *rngs) const override;
    void sampleVisibleBatch(const linalg::Matrix &h, linalg::Matrix &v,
                            linalg::Matrix &pv,
                            util::Rng *rngs) const override;
    void annealBatch(int steps, linalg::Matrix &v, linalg::Matrix &h,
                     linalg::Matrix &pv, linalg::Matrix &ph,
                     util::Rng *rngs) const override;

    /** Packed input straight into the layerBatch dispatcher: no float
     *  detour at all on the serving miss path. */
    void sampleHiddenBatchPacked(const linalg::BitMatrix &v,
                                 linalg::BitMatrix &h, linalg::Matrix &ph,
                                 util::Rng *rngs) const override;
    void sampleVisibleBatchPacked(const linalg::BitMatrix &h,
                                  linalg::BitMatrix &v, linalg::Matrix &pv,
                                  util::Rng *rngs) const override;

  protected:
    exec::ThreadPool *batchPool() const override { return pool_; }

  private:
    /**
     * One dense packed batched half-sweep in -> out over @p w (rows =
     * input units): threads chains over workers for deep batches,
     * units within the sweep for shallow ones.
     */
    void packedLayerBatch(const linalg::Matrix &w, const linalg::Vector &b,
                          const linalg::BitMatrix &in,
                          linalg::BitMatrix &out, linalg::Matrix &means,
                          util::Rng *rngs) const;

    /**
     * Sparse-streamed batched half-sweep: the same sweep driven by a
     * pre-built active-index view instead of packed words, with the
     * identical threading shapes and bit-identical results.
     */
    void sparseLayerBatch(const linalg::Matrix &w, const linalg::Vector &b,
                          const linalg::SparseBitView &in,
                          linalg::BitMatrix &out, linalg::Matrix &means,
                          util::Rng *rngs) const;

    /**
     * Dispatch a half-sweep over an already-packed state: popcount
     * probe, then the dense or sparse body.  @p view is caller-owned
     * scratch for the sparse side, so a multi-step walk reuses its
     * index storage instead of reallocating per half-sweep.
     */
    void layerBatch(const linalg::Matrix &w, const linalg::Vector &b,
                    const linalg::BitMatrix &in, linalg::BitMatrix &out,
                    linalg::Matrix &means, util::Rng *rngs,
                    linalg::SparseBitView &view) const;

    const Rbm *model_;
    linalg::Matrix wT_;  ///< cached transpose for the visible sweep
    exec::ThreadPool *pool_;
    double threshold_;   ///< resolved sparse crossover activity
    linalg::simd::IsaTier isa_;            ///< resolved tier (never Auto)
    const linalg::simd::KernelTable *kt_;  ///< null iff isa_ == Scalar
};

} // namespace ising::rbm

#endif // ISINGRBM_RBM_SAMPLING_BACKEND_HPP
