/**
 * @file
 * Unified conditional-sampling interface over an RBM energy landscape.
 *
 * The repo previously carried three divergent copies of the block-Gibbs
 * half-sweeps: the software chain (rbm/gibbs.cpp), the clamped
 * resampling loop (rbm/sampling.cpp) and the fabric settle loop inside
 * the GS accelerator.  All of them are the same two operations --
 * latch h given v, latch v given h -- differing only in *what*
 * evaluates the conditional: exact sigmoid math or the noisy analog
 * substrate.  SamplingBackend captures exactly that surface, so every
 * chain, sampler and app can swap exact software sampling for
 * noisy-fabric sampling via configuration instead of bespoke code
 * (SoftwareGibbsBackend here; accel::AnalogFabricBackend for the
 * substrate).
 */

#ifndef ISINGRBM_RBM_SAMPLING_BACKEND_HPP
#define ISINGRBM_RBM_SAMPLING_BACKEND_HPP

#include "rbm/rbm.hpp"

namespace ising::rbm {

/** One conditional-sampling engine: the two Gibbs half-sweeps. */
class SamplingBackend
{
  public:
    virtual ~SamplingBackend() = default;

    virtual std::size_t numVisible() const = 0;
    virtual std::size_t numHidden() const = 0;

    /** Human-readable backend tag for logs and tables. */
    virtual const char *name() const = 0;

    /**
     * Latch a binary hidden sample h given visible levels v.  @p ph
     * receives the per-unit means the backend sampled from; backends
     * whose physics only expose latched bits (the analog fabric)
     * report the sample itself.
     */
    virtual void sampleHidden(const linalg::Vector &v, linalg::Vector &h,
                              linalg::Vector &ph,
                              util::Rng &rng) const = 0;

    /** Mirror half-sweep: latch visible sample v given hidden bits h. */
    virtual void sampleVisible(const linalg::Vector &h, linalg::Vector &v,
                               linalg::Vector &pv,
                               util::Rng &rng) const = 0;

    /**
     * Free-running evolution: @p steps alternating v|h -> h|v sweeps
     * from the current hidden state -- the negative-phase random walk
     * of CD, PCD, GS and BGF alike.  The default implementation is the
     * alternating loop every current backend uses.
     */
    virtual void anneal(int steps, linalg::Vector &v, linalg::Vector &h,
                        linalg::Vector &pv, linalg::Vector &ph,
                        util::Rng &rng) const;
};

/**
 * Exact software sampling: conditionals evaluated in float math via
 * the blocked linalg kernels.
 *
 * The visible half-sweep runs off a transpose of W cached at
 * construction/setModel() time, so both directions traverse contiguous
 * rows and skip zero entries of the (binary) input state.  Re-run
 * setModel() after mutating the model's weights.
 */
class SoftwareGibbsBackend final : public SamplingBackend
{
  public:
    /** @param model sampled model (borrowed; must outlive the backend) */
    explicit SoftwareGibbsBackend(const Rbm &model);

    /** Re-point at a model and refresh the cached transpose. */
    void setModel(const Rbm &model);

    std::size_t numVisible() const override { return model_->numVisible(); }
    std::size_t numHidden() const override { return model_->numHidden(); }
    const char *name() const override { return "software"; }

    void sampleHidden(const linalg::Vector &v, linalg::Vector &h,
                      linalg::Vector &ph, util::Rng &rng) const override;
    void sampleVisible(const linalg::Vector &h, linalg::Vector &v,
                       linalg::Vector &pv, util::Rng &rng) const override;

  private:
    const Rbm *model_;
    linalg::Matrix wT_;  ///< cached transpose for the visible sweep
};

} // namespace ising::rbm

#endif // ISINGRBM_RBM_SAMPLING_BACKEND_HPP
