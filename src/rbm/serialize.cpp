/**
 * @file
 * Model persistence implementation.
 */

#include "rbm/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/logging.hpp"

namespace ising::rbm {

namespace {

constexpr const char *kRbmMagic = "isingrbm-rbm";
constexpr const char *kDbnMagic = "isingrbm-dbn";

void
expectMagic(std::istream &is, const char *magic)
{
    std::string word, version;
    if (!(is >> word >> version) || word != magic || version != "v1")
        util::fatal(std::string("serialize: expected '") + magic +
                    " v1' header");
}

} // namespace

void
saveRbm(const Rbm &model, std::ostream &os)
{
    const std::size_t m = model.numVisible(), n = model.numHidden();
    os << kRbmMagic << " v1\n" << m << ' ' << n << '\n';
    os << std::setprecision(std::numeric_limits<float>::max_digits10);
    for (std::size_t i = 0; i < m; ++i)
        os << model.visibleBias()[i] << (i + 1 == m ? '\n' : ' ');
    for (std::size_t j = 0; j < n; ++j)
        os << model.hiddenBias()[j] << (j + 1 == n ? '\n' : ' ');
    for (std::size_t i = 0; i < m; ++i) {
        const float *row = model.weights().row(i);
        for (std::size_t j = 0; j < n; ++j)
            os << row[j] << (j + 1 == n ? '\n' : ' ');
    }
}

Rbm
loadRbm(std::istream &is)
{
    expectMagic(is, kRbmMagic);
    std::size_t m = 0, n = 0;
    if (!(is >> m >> n) || m == 0 || n == 0)
        util::fatal("serialize: bad RBM dimensions");
    Rbm model(m, n);
    for (std::size_t i = 0; i < m; ++i)
        if (!(is >> model.visibleBias()[i]))
            util::fatal("serialize: truncated visible biases");
    for (std::size_t j = 0; j < n; ++j)
        if (!(is >> model.hiddenBias()[j]))
            util::fatal("serialize: truncated hidden biases");
    for (std::size_t i = 0; i < m; ++i) {
        float *row = model.weights().row(i);
        for (std::size_t j = 0; j < n; ++j)
            if (!(is >> row[j]))
                util::fatal("serialize: truncated weight matrix");
    }
    return model;
}

void
saveRbm(const Rbm &model, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        util::fatal("serialize: cannot open for writing: " + path);
    saveRbm(model, os);
    if (!os)
        util::fatal("serialize: write failed: " + path);
}

Rbm
loadRbmFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        util::fatal("serialize: cannot open for reading: " + path);
    return loadRbm(is);
}

void
saveDbn(const Dbn &stack, std::ostream &os)
{
    os << kDbnMagic << " v1\n" << stack.numLayers() << '\n';
    for (std::size_t l = 0; l < stack.numLayers(); ++l)
        saveRbm(stack.layer(l), os);
}

Dbn
loadDbn(std::istream &is)
{
    expectMagic(is, kDbnMagic);
    std::size_t layers = 0;
    if (!(is >> layers) || layers == 0)
        util::fatal("serialize: bad DBN layer count");
    std::vector<Rbm> loaded;
    loaded.reserve(layers);
    std::vector<std::size_t> sizes;
    for (std::size_t l = 0; l < layers; ++l) {
        loaded.push_back(loadRbm(is));
        if (l == 0)
            sizes.push_back(loaded[0].numVisible());
        else if (loaded[l].numVisible() != loaded[l - 1].numHidden())
            util::fatal("serialize: DBN layer dimensions inconsistent");
        sizes.push_back(loaded[l].numHidden());
    }
    Dbn stack(sizes);
    for (std::size_t l = 0; l < layers; ++l)
        stack.layer(l) = loaded[l];
    return stack;
}

void
saveDbn(const Dbn &stack, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        util::fatal("serialize: cannot open for writing: " + path);
    saveDbn(stack, os);
}

Dbn
loadDbnFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        util::fatal("serialize: cannot open for reading: " + path);
    return loadDbn(is);
}

} // namespace ising::rbm
