/**
 * @file
 * Model persistence implementation (v1 dumps + v2 checkpoints).
 */

#include "rbm/serialize.hpp"

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <utility>

#include "util/checksum.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"
#include "util/logging.hpp"

namespace ising::rbm {

namespace {

constexpr const char *kRbmMagic = "isingrbm-rbm";
constexpr const char *kDbnMagic = "isingrbm-dbn";
constexpr const char *kCheckpointMagic = "isingrbm-checkpoint";

/** Integrity-trailer line prefix ("checksum crc64 <16 hex>\n"). */
constexpr const char *kTrailerPrefix = "checksum crc64 ";
constexpr std::size_t kTrailerPrefixLen = 15;
constexpr std::size_t kTrailerHexLen = 16;
/** The trailer algorithm declared in the meta section. */
constexpr const char *kTrailerAlgo = "crc64";

void
expectMagic(std::istream &is, const char *magic)
{
    std::string word, version;
    if (!(is >> word >> version) || word != magic || version != "v1")
        util::fatal(std::string("serialize: expected '") + magic +
                    " v1' header");
}

/** Read one whitespace-delimited token; fatal on truncation. */
std::string
expectToken(std::istream &is, const char *what)
{
    std::string token;
    if (!(is >> token))
        util::fatal(std::string("serialize: truncated archive (expected ") +
                    what + ")");
    return token;
}

/** Consume an exact literal token; fatal on mismatch. */
void
expectLiteral(std::istream &is, const std::string &literal,
              const char *context)
{
    const std::string token = expectToken(is, context);
    if (token != literal)
        util::fatal("serialize: corrupt archive: expected '" + literal +
                    "' (" + context + "), found '" + token + "'");
}

template <typename T>
T
expectValue(std::istream &is, const char *what)
{
    T value{};
    if (!(is >> value))
        util::fatal(std::string("serialize: corrupt archive: bad ") + what);
    return value;
}

/**
 * Sanity caps applied before any allocation, so hostile or corrupt
 * archives are rejected with a clean fatal() instead of aborting in
 * the allocator.  Generous for every paper-scale model.
 */
constexpr unsigned long long kMaxUnits = 1ull << 24;   ///< per dimension
constexpr unsigned long long kMaxWeights = 1ull << 28; ///< per matrix
constexpr unsigned long long kMaxLayers = 1024;        ///< DBN depth

/** Read a positive dimension/count, capped.  Negative values wrap to
 *  huge unsigned ones under istream extraction and are caught by the
 *  cap. */
std::size_t
expectDim(std::istream &is, const char *what,
          unsigned long long cap = kMaxUnits)
{
    unsigned long long v = 0;
    if (!(is >> v) || v == 0 || v > cap)
        util::fatal(std::string("serialize: bad ") + what);
    return static_cast<std::size_t>(v);
}

void
checkWeightCount(unsigned long long rows, unsigned long long cols,
                 const char *what)
{
    if (rows * cols > kMaxWeights)
        util::fatal(std::string("serialize: implausibly large ") + what);
}

void
writeFloats(std::ostream &os, const float *data, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        os << data[i] << (i + 1 == n ? '\n' : ' ');
}

void
readFloats(std::istream &is, float *data, std::size_t n, const char *what)
{
    for (std::size_t i = 0; i < n; ++i)
        if (!(is >> data[i]))
            util::fatal(std::string("serialize: truncated ") + what);
}

/** Rbm parameters without a magic header (shared by v1 and v2). */
void
writeRbmBody(const Rbm &model, std::ostream &os)
{
    const std::size_t m = model.numVisible(), n = model.numHidden();
    os << m << ' ' << n << '\n';
    writeFloats(os, model.visibleBias().data(), m);
    writeFloats(os, model.hiddenBias().data(), n);
    for (std::size_t i = 0; i < m; ++i)
        writeFloats(os, model.weights().row(i), n);
}

Rbm
readRbmBody(std::istream &is)
{
    const std::size_t m = expectDim(is, "RBM dimensions");
    const std::size_t n = expectDim(is, "RBM dimensions");
    checkWeightCount(m, n, "RBM weight matrix");
    Rbm model(m, n);
    readFloats(is, model.visibleBias().data(), m, "visible biases");
    readFloats(is, model.hiddenBias().data(), n, "hidden biases");
    for (std::size_t i = 0; i < m; ++i)
        readFloats(is, model.weights().row(i), n, "weight matrix");
    return model;
}

/**
 * Shared DBN reader: a layer count followed by one model per layer
 * (@p readLayer is readRbmBody for v2 payloads, loadRbm for v1 files
 * whose layers carry their own magic), with adjacent dimensions
 * validated while stitching the stack.
 */
Dbn
readDbnStack(std::istream &is, Rbm (*readLayer)(std::istream &))
{
    const std::size_t layers = expectDim(is, "DBN layer count",
                                         kMaxLayers);
    std::vector<Rbm> loaded;
    loaded.reserve(layers);
    std::vector<std::size_t> sizes;
    for (std::size_t l = 0; l < layers; ++l) {
        loaded.push_back(readLayer(is));
        if (l == 0)
            sizes.push_back(loaded[0].numVisible());
        else if (loaded[l].numVisible() != loaded[l - 1].numHidden())
            util::fatal("serialize: DBN layer dimensions inconsistent");
        sizes.push_back(loaded[l].numHidden());
    }
    Dbn stack(sizes);
    for (std::size_t l = 0; l < layers; ++l)
        stack.layer(l) = std::move(loaded[l]);
    return stack;
}

// ------------------------------------------------ v2 family payloads

void
writeFamilyPayload(const Checkpoint &ckpt, std::ostream &os)
{
    switch (ckpt.family()) {
      case ModelFamily::Rbm:
        writeRbmBody(std::get<Rbm>(ckpt.model), os);
        return;
      case ModelFamily::ClassRbm: {
        const ClassRbm &model = std::get<ClassRbm>(ckpt.model);
        os << model.numPixels() << ' ' << model.numClasses() << '\n';
        writeRbmBody(model.joint(), os);
        return;
      }
      case ModelFamily::CfRbm: {
        const CfRbm &model = std::get<CfRbm>(ckpt.model);
        os << model.numUsers() << ' ' << model.numStars() << ' '
           << model.numHidden() << '\n';
        const std::size_t rows = model.weights().rows();
        const std::size_t cols = model.weights().cols();
        writeFloats(os, model.visibleBias().data(), rows);
        writeFloats(os, model.hiddenBias().data(), cols);
        for (std::size_t i = 0; i < rows; ++i)
            writeFloats(os, model.weights().row(i), cols);
        return;
      }
      case ModelFamily::ConvRbm: {
        const ConvRbm &model = std::get<ConvRbm>(ckpt.model);
        const ConvRbmConfig &cfg = model.config();
        os << cfg.imageSide << ' ' << cfg.filterSide << ' '
           << cfg.numFilters << ' ' << cfg.poolGrid << '\n'
           << cfg.learningRate << ' ' << cfg.weightDecay << ' '
           << cfg.sparsityTarget << ' ' << cfg.sparsityCost << '\n';
        os << model.visibleBias() << '\n';
        writeFloats(os, model.hiddenBias().data(),
                    model.hiddenBias().size());
        for (std::size_t k = 0; k < model.filters().rows(); ++k)
            writeFloats(os, model.filters().row(k),
                        model.filters().cols());
        return;
      }
      case ModelFamily::Dbn: {
        const Dbn &stack = std::get<Dbn>(ckpt.model);
        os << stack.numLayers() << '\n';
        for (std::size_t l = 0; l < stack.numLayers(); ++l)
            writeRbmBody(stack.layer(l), os);
        return;
      }
      case ModelFamily::Dbm: {
        const Dbm &model = std::get<Dbm>(ckpt.model);
        const std::size_t m = model.numVisible();
        const std::size_t n1 = model.hidden1(), n2 = model.hidden2();
        os << m << ' ' << n1 << ' ' << n2 << '\n';
        writeFloats(os, model.visibleBias().data(), m);
        writeFloats(os, model.hidden1Bias().data(), n1);
        writeFloats(os, model.hidden2Bias().data(), n2);
        for (std::size_t i = 0; i < m; ++i)
            writeFloats(os, model.w1().row(i), n1);
        for (std::size_t j = 0; j < n1; ++j)
            writeFloats(os, model.w2().row(j), n2);
        return;
      }
    }
    util::fatal("serialize: unknown checkpoint family");
}

Checkpoint::Payload
readFamilyPayload(ModelFamily family, std::istream &is)
{
    switch (family) {
      case ModelFamily::Rbm:
        return readRbmBody(is);
      case ModelFamily::ClassRbm: {
        const std::size_t pixels = expectDim(is, "class_rbm pixel count");
        const std::size_t classes =
            expectDim(is, "class_rbm class count");
        Rbm joint = readRbmBody(is);
        if (joint.numVisible() != pixels + classes)
            util::fatal("serialize: class_rbm dimensions inconsistent");
        ClassRbm model(pixels, static_cast<int>(classes),
                       joint.numHidden());
        model.joint() = std::move(joint);
        return model;
      }
      case ModelFamily::CfRbm: {
        const std::size_t users = expectDim(is, "cf_rbm dimensions");
        const std::size_t stars = expectDim(is, "cf_rbm dimensions");
        const std::size_t hidden = expectDim(is, "cf_rbm dimensions");
        checkWeightCount(users, stars, "cf_rbm softmax groups");
        checkWeightCount(users * stars, hidden, "cf_rbm weight matrix");
        CfRbm model(static_cast<int>(users), static_cast<int>(stars),
                    static_cast<int>(hidden));
        const std::size_t rows = model.weights().rows();
        const std::size_t cols = model.weights().cols();
        readFloats(is, model.visibleBias().data(), rows, "cf biases");
        readFloats(is, model.hiddenBias().data(), cols, "cf biases");
        for (std::size_t i = 0; i < rows; ++i)
            readFloats(is, model.weights().row(i), cols, "cf weights");
        return model;
      }
      case ModelFamily::ConvRbm: {
        ConvRbmConfig cfg;
        cfg.imageSide = expectDim(is, "conv_rbm image side");
        cfg.filterSide = expectDim(is, "conv_rbm filter side");
        cfg.numFilters = expectDim(is, "conv_rbm filter count");
        cfg.poolGrid = expectDim(is, "conv_rbm pool grid");
        cfg.learningRate = expectValue<double>(is, "conv config");
        cfg.weightDecay = expectValue<double>(is, "conv config");
        cfg.sparsityTarget = expectValue<double>(is, "conv config");
        cfg.sparsityCost = expectValue<double>(is, "conv config");
        if (cfg.filterSide > cfg.imageSide)
            util::fatal("serialize: bad conv_rbm configuration");
        checkWeightCount(cfg.numFilters,
                         cfg.filterSide * cfg.filterSide,
                         "conv_rbm filters");
        ConvRbm model(cfg);
        model.setVisibleBias(expectValue<float>(is, "conv visible bias"));
        readFloats(is, model.hiddenBias().data(),
                   model.hiddenBias().size(), "conv hidden biases");
        for (std::size_t k = 0; k < model.filters().rows(); ++k)
            readFloats(is, model.filters().row(k), model.filters().cols(),
                       "conv filters");
        return model;
      }
      case ModelFamily::Dbn:
        return readDbnStack(is, readRbmBody);
      case ModelFamily::Dbm: {
        const std::size_t m = expectDim(is, "dbm dimensions");
        const std::size_t n1 = expectDim(is, "dbm dimensions");
        const std::size_t n2 = expectDim(is, "dbm dimensions");
        checkWeightCount(m, n1, "dbm W1");
        checkWeightCount(n1, n2, "dbm W2");
        Dbm model(m, n1, n2);
        readFloats(is, model.visibleBias().data(), m, "dbm biases");
        readFloats(is, model.hidden1Bias().data(), n1, "dbm biases");
        readFloats(is, model.hidden2Bias().data(), n2, "dbm biases");
        for (std::size_t i = 0; i < m; ++i)
            readFloats(is, model.w1().row(i), n1, "dbm W1");
        for (std::size_t j = 0; j < n1; ++j)
            readFloats(is, model.w2().row(j), n2, "dbm W2");
        return model;
      }
    }
    util::fatal("serialize: unknown checkpoint family");
}

bool
hasWhitespace(const std::string &s)
{
    return s.find_first_of(" \t\r\n") != std::string::npos;
}

// ------------------------------------------------ optional sections

void
writeTrainSection(const TrainState &state, std::ostream &os)
{
    os << "section train\n";
    os << "counters " << state.counters.size() << '\n';
    for (const auto &[name, value] : state.counters) {
        if (name.empty() || hasWhitespace(name))
            util::fatal("serialize: bad train-state counter name '" +
                        name + "'");
        os << name << ' ' << value << '\n';
    }
    os << "tensors " << state.tensors.size() << '\n';
    for (const auto &[name, tensor] : state.tensors) {
        if (name.empty() || hasWhitespace(name))
            util::fatal("serialize: bad train-state tensor name '" +
                        name + "'");
        os << name << ' ' << tensor.rows() << ' ' << tensor.cols()
           << '\n';
        for (std::size_t r = 0; r < tensor.rows(); ++r)
            writeFloats(os, tensor.row(r), tensor.cols());
    }
    os << "end train\n";
}

TrainState
readTrainSection(std::istream &is)
{
    TrainState state;
    expectLiteral(is, "counters", "train counters");
    const auto numCounters =
        expectValue<std::size_t>(is, "train counter count");
    if (numCounters > kMaxUnits)
        util::fatal("serialize: implausibly many train counters");
    for (std::size_t i = 0; i < numCounters; ++i) {
        const std::string name = expectToken(is, "train counter name");
        state.setCounter(name,
                         expectValue<std::uint64_t>(is, "train counter"));
    }
    expectLiteral(is, "tensors", "train tensors");
    const auto numTensors =
        expectValue<std::size_t>(is, "train tensor count");
    if (numTensors > kMaxUnits)
        util::fatal("serialize: implausibly many train tensors");
    for (std::size_t i = 0; i < numTensors; ++i) {
        const std::string name = expectToken(is, "train tensor name");
        // Rows may legitimately be 0 (e.g. an empty particle set), so
        // read raw and cap rather than using expectDim.
        const auto rows = expectValue<std::size_t>(is, "train tensor rows");
        const auto cols = expectValue<std::size_t>(is, "train tensor cols");
        if (rows > kMaxUnits || cols > kMaxUnits)
            util::fatal("serialize: bad train tensor dimensions");
        checkWeightCount(rows, cols, "train tensor");
        linalg::Matrix tensor(rows, cols);
        for (std::size_t r = 0; r < rows; ++r)
            readFloats(is, tensor.row(r), cols, "train tensor");
        state.setTensor(name, std::move(tensor));
    }
    expectLiteral(is, "end", "train trailer");
    expectLiteral(is, "train", "train trailer");
    return state;
}

/** Consume an unrecognized section's tokens through `end <name>`. */
void
skipUnknownSection(std::istream &is, const std::string &name)
{
    std::string token;
    while (is >> token) {
        if (token != "end")
            continue;
        if (expectToken(is, "section trailer") == name)
            return;
    }
    util::fatal("serialize: truncated archive (unterminated section '" +
                name + "')");
}

} // namespace

const char *const kCheckpointExtension = ".ckpt";

const char *
familyTag(ModelFamily family)
{
    switch (family) {
      case ModelFamily::Rbm: return "rbm";
      case ModelFamily::ClassRbm: return "class_rbm";
      case ModelFamily::CfRbm: return "cf_rbm";
      case ModelFamily::ConvRbm: return "conv_rbm";
      case ModelFamily::Dbn: return "dbn";
      case ModelFamily::Dbm: return "dbm";
    }
    util::fatal("serialize: unknown model family");
}

ModelFamily
familyFromTag(const std::string &tag)
{
    std::string known;
    for (const ModelFamily family : kAllModelFamilies) {
        if (tag == familyTag(family))
            return family;
        known += known.empty() ? "" : ", ";
        known += familyTag(family);
    }
    util::fatal("serialize: unknown model family tag '" + tag +
                "' (use " + known + ")");
}

void
saveRbm(const Rbm &model, std::ostream &os)
{
    os << kRbmMagic << " v1\n";
    os << std::setprecision(std::numeric_limits<float>::max_digits10);
    writeRbmBody(model, os);
}

Rbm
loadRbm(std::istream &is)
{
    expectMagic(is, kRbmMagic);
    return readRbmBody(is);
}

void
saveRbm(const Rbm &model, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        util::fatal("serialize: cannot open for writing: " + path);
    saveRbm(model, os);
    if (!os)
        util::fatal("serialize: write failed: " + path);
}

Rbm
loadRbmFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        util::fatal("serialize: cannot open for reading: " + path);
    return loadRbm(is);
}

void
saveDbn(const Dbn &stack, std::ostream &os)
{
    os << kDbnMagic << " v1\n" << stack.numLayers() << '\n';
    for (std::size_t l = 0; l < stack.numLayers(); ++l)
        saveRbm(stack.layer(l), os);
}

Dbn
loadDbn(std::istream &is)
{
    expectMagic(is, kDbnMagic);
    return readDbnStack(is, loadRbm);
}

void
saveDbn(const Dbn &stack, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        util::fatal("serialize: cannot open for writing: " + path);
    saveDbn(stack, os);
}

Dbn
loadDbnFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        util::fatal("serialize: cannot open for reading: " + path);
    return loadDbn(is);
}

namespace {

/** The archive body: everything up to and including `end checkpoint`. */
void
writeCheckpointBody(const Checkpoint &ckpt, std::ostream &os)
{
    if (hasWhitespace(ckpt.meta.name) || hasWhitespace(ckpt.meta.backend))
        util::fatal("serialize: checkpoint meta values must not contain "
                    "whitespace");
    // double precision covers the float payloads exactly too.
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << kCheckpointMagic << " v2\n";
    os << "family " << familyTag(ckpt.family()) << '\n';

    std::vector<std::pair<std::string, std::string>> meta;
    if (!ckpt.meta.name.empty())
        meta.emplace_back("name", ckpt.meta.name);
    if (!ckpt.meta.backend.empty())
        meta.emplace_back("backend", ckpt.meta.backend);
    meta.emplace_back("seed", std::to_string(ckpt.meta.seed));
    meta.emplace_back("epoch", std::to_string(ckpt.meta.epoch));
    // Written only when set: archives from runs that never stopped
    // early stay byte-identical to pre-early-stop writers.
    if (ckpt.meta.earlyStopEpoch >= 0)
        meta.emplace_back("early_stop",
                          std::to_string(ckpt.meta.earlyStopEpoch));
    // Declare the integrity trailer inside the checksummed body, so a
    // file truncated exactly at the trailer boundary (structurally
    // complete, trailer gone) is still rejected by file loads.
    meta.emplace_back("trailer", kTrailerAlgo);
    os << "section meta " << meta.size() << '\n';
    for (const auto &[key, value] : meta)
        os << key << ' ' << value << '\n';
    os << "end meta\n";

    os << "section model\n";
    writeFamilyPayload(ckpt, os);
    os << "end model\n";
    if (ckpt.train && !ckpt.train->empty())
        writeTrainSection(*ckpt.train, os);
    os << "end checkpoint\n";
}

/**
 * Locate the trailer's line start in a slurped archive, or npos.  The
 * trailer is by construction the final line of the file.
 */
std::size_t
findTrailer(const std::string &content, std::uint64_t &value)
{
    const std::size_t lineLen =
        kTrailerPrefixLen + kTrailerHexLen + 1;  // + '\n'
    if (content.size() < lineLen || content.back() != '\n')
        return std::string::npos;
    const std::size_t start = content.size() - lineLen;
    if (content.compare(start, kTrailerPrefixLen, kTrailerPrefix) != 0)
        return std::string::npos;
    const std::string hex =
        content.substr(start + kTrailerPrefixLen, kTrailerHexLen);
    if (!util::parseCrc64Hex(hex, value))
        return std::string::npos;
    return start;
}

} // namespace

void
saveCheckpoint(const Checkpoint &ckpt, std::ostream &os)
{
    // Stage the body to compute the CRC-64 trailer over its exact
    // bytes; archives are small relative to the models they carry.
    std::ostringstream body;
    writeCheckpointBody(ckpt, body);
    const std::string text = body.str();
    os << text << kTrailerPrefix << util::crc64Hex(util::crc64(text))
       << '\n';
}

void
saveCheckpoint(const Checkpoint &ckpt, const std::string &path)
{
    // Write-temp-then-rename: training sessions overwrite live archives
    // that a serving registry may revalidate-and-reload at any moment,
    // so a reader must never observe a half-written file.  Crash points
    // and write/truncate faults (util::FaultInjector) let the tests
    // kill or corrupt this sequence at every interesting instant.
    util::FaultInjector &faults = util::FaultInjector::instance();
    faults.onCrashPoint("checkpoint.before-write");
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            util::fatal("serialize: cannot open for writing: " + tmp);
        saveCheckpoint(ckpt, os);
        os.flush();
        if (!os || faults.shouldFailWrite(path))
            util::fatal("serialize: write failed: " + tmp);
    }
    faults.onCrashPoint("checkpoint.after-temp-write");
    if (const auto bytes = faults.truncateBytes(path)) {
        std::error_code ec;
        const auto size = std::filesystem::file_size(tmp, ec);
        if (!ec && *bytes < size)
            std::filesystem::resize_file(tmp, *bytes, ec);
    }
    // fsync before the rename: without it, a crash shortly after the
    // rename can publish a directory entry whose data blocks never
    // reached the disk -- a torn archive under a valid name.
    std::string syncError;
    if (!util::fsyncFile(tmp, &syncError))
        util::fatal("serialize: cannot sync " + tmp + ": " + syncError);
    faults.onCrashPoint("checkpoint.before-rename");
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        util::fatal("serialize: cannot move " + tmp + " into place: " +
                    ec.message());
    // Directory-entry durability is best-effort (not every filesystem
    // supports directory fsync); the data itself is already synced.
    if (!util::fsyncParentDir(path, &syncError))
        util::warn("serialize: directory sync failed: " + syncError);
    faults.onCrashPoint("checkpoint.after-rename");
}

Checkpoint
loadCheckpoint(std::istream &is)
{
    const std::string magic = expectToken(is, "archive magic");
    const std::string version = expectToken(is, "archive version");

    // Legacy v1 artifacts migrate to checkpoints with empty meta.
    if (magic == kRbmMagic && version == "v1")
        return Checkpoint{{}, readRbmBody(is), {}};
    if (magic == kDbnMagic && version == "v1")
        return Checkpoint{{}, readDbnStack(is, loadRbm), {}};

    if (magic != kCheckpointMagic || version != "v2")
        util::fatal("serialize: unrecognized archive header '" + magic +
                    " " + version + "'");

    expectLiteral(is, "family", "family tag");
    const ModelFamily family =
        familyFromTag(expectToken(is, "family name"));

    Checkpoint ckpt;
    expectLiteral(is, "section", "meta section");
    expectLiteral(is, "meta", "meta section");
    const auto metaCount = expectValue<std::size_t>(is, "meta entry count");
    for (std::size_t i = 0; i < metaCount; ++i) {
        const std::string key = expectToken(is, "meta key");
        const std::string value = expectToken(is, "meta value");
        if (key == "name")
            ckpt.meta.name = value;
        else if (key == "backend")
            ckpt.meta.backend = value;
        else if (key == "trailer")
            ckpt.meta.trailer = value;
        else if (key == "seed" || key == "epoch" || key == "early_stop") {
            // Digits only: strtoull would silently negate a leading
            // '-' and saturate on overflow.
            errno = 0;
            char *end = nullptr;
            const unsigned long long parsed =
                std::strtoull(value.c_str(), &end, 10);
            if (value.empty() ||
                value.find_first_not_of("0123456789") !=
                    std::string::npos ||
                !end || *end != '\0' || errno == ERANGE ||
                (key != "seed" &&
                 parsed > static_cast<unsigned long long>(
                              std::numeric_limits<int>::max())))
                util::fatal("serialize: corrupt meta value '" + value +
                            "' for key '" + key + "'");
            if (key == "seed")
                ckpt.meta.seed = parsed;
            else if (key == "epoch")
                ckpt.meta.epoch = static_cast<int>(parsed);
            else
                ckpt.meta.earlyStopEpoch = static_cast<int>(parsed);
        }
        // Unknown keys are ignored for forward compatibility.
    }
    expectLiteral(is, "end", "meta trailer");
    expectLiteral(is, "meta", "meta trailer");

    expectLiteral(is, "section", "model section");
    expectLiteral(is, "model", "model section");
    ckpt.model = readFamilyPayload(family, is);
    expectLiteral(is, "end", "model trailer");
    expectLiteral(is, "model", "model trailer");

    // Optional trailing sections, then the checkpoint trailer.  Unknown
    // sections are skipped token-wise so newer writers stay loadable.
    for (;;) {
        const std::string token =
            expectToken(is, "section or checkpoint trailer");
        if (token == "end") {
            expectLiteral(is, "checkpoint", "checkpoint trailer");
            break;
        }
        if (token != "section")
            util::fatal("serialize: corrupt archive: expected 'section' "
                        "or 'end checkpoint', found '" + token + "'");
        const std::string name = expectToken(is, "section name");
        if (name == "train") {
            if (ckpt.train)
                util::fatal("serialize: duplicate train section");
            ckpt.train = readTrainSection(is);
        } else {
            skipUnknownSection(is, name);
        }
    }
    return ckpt;
}

Checkpoint
loadCheckpointFile(const std::string &path)
{
    std::string content, error;
    if (!util::slurpFile(path, content, &error))
        util::fatal("serialize: " + error);

    // Verify the integrity trailer before trusting any byte of the
    // structure: a torn or corrupted archive must be rejected whether
    // or not it happens to still parse.
    std::uint64_t declared = 0;
    const std::size_t trailerAt = findTrailer(content, declared);
    const bool hasTrailer = trailerAt != std::string::npos;
    if (hasTrailer) {
        const std::uint64_t actual =
            util::crc64(std::string_view(content).substr(0, trailerAt));
        if (actual != declared)
            util::fatal("serialize: checksum mismatch in " + path +
                        " (expected crc64 " + util::crc64Hex(declared) +
                        ", archive hashes to " + util::crc64Hex(actual) +
                        "): torn or corrupt archive");
    }

    std::istringstream is(hasTrailer ? content.substr(0, trailerAt)
                                     : content);
    Checkpoint ckpt = loadCheckpoint(is);

    if (!hasTrailer) {
        if (ckpt.meta.trailer == kTrailerAlgo)
            util::fatal("serialize: " + path + " declares a " +
                        std::string(kTrailerAlgo) +
                        " trailer but carries none (archive truncated "
                        "at the trailer boundary?)");
        if (content.rfind(kCheckpointMagic, 0) == 0)
            util::warn("serialize: " + path +
                       " carries no integrity trailer (written before "
                       "checksummed checkpoints); re-save to upgrade");
    }
    return ckpt;
}

std::optional<Checkpoint>
tryLoadCheckpointFile(const std::string &path, std::string *error)
{
    try {
        util::FatalThrowScope scope;
        return loadCheckpointFile(path);
    } catch (const util::FatalError &e) {
        if (error)
            *error = e.what();
        return std::nullopt;
    }
}

std::optional<std::uint64_t>
readArchiveTrailer(const std::string &path)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is)
        return std::nullopt;
    const auto size = static_cast<std::uint64_t>(is.tellg());
    const std::size_t lineLen =
        kTrailerPrefixLen + kTrailerHexLen + 1;
    if (size < lineLen)
        return std::nullopt;
    is.seekg(static_cast<std::streamoff>(size - lineLen));
    std::string tail(lineLen, '\0');
    if (!is.read(tail.data(), static_cast<std::streamsize>(lineLen)))
        return std::nullopt;
    std::uint64_t value = 0;
    if (findTrailer(tail, value) != 0)
        return std::nullopt;
    return value;
}

} // namespace ising::rbm
