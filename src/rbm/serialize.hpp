/**
 * @file
 * Model persistence.
 *
 * Two formats live here:
 *
 *  - **v1** (legacy): plain `Rbm`/`Dbn` parameter dumps, kept for
 *    loading old artifacts and for callers that only need raw weights.
 *
 *      isingrbm-rbm v1
 *      <numVisible> <numHidden>
 *      <bv_0> ... <bv_{m-1}>
 *      <bh_0> ... <bh_{n-1}>
 *      <W_00> ... <W_0{n-1}>
 *      ...
 *
 *  - **v2 checkpoint**: a versioned tagged-section archive that
 *    round-trips *every* model family (`Rbm`, `ClassRbm`, `CfRbm`,
 *    `ConvRbm`, `Dbn`, `Dbm`) bit-exactly, plus training provenance
 *    (name, trainer backend, seed, epoch).  Sections are explicit and
 *    self-describing so readers can verify structure and reject
 *    corrupted archives:
 *
 *      isingrbm-checkpoint v2
 *      family <tag>
 *      section meta <numEntries>
 *      <key> <value>
 *      ...
 *      end meta
 *      section model
 *      <family payload>
 *      end model
 *      [section train ... end train]
 *      end checkpoint
 *
 *    Unknown meta keys are ignored (forward compatibility); anything
 *    structurally wrong (bad magic, unknown family, truncated payload,
 *    missing trailers) is fatal.  `loadCheckpoint` also accepts v1
 *    files, migrating them to `Rbm`/`Dbn` checkpoints with empty meta.
 *
 *    **Integrity trailer**: after `end checkpoint` the writer appends
 *    one final line,
 *
 *      checksum crc64 <16 hex digits>
 *
 *    a CRC-64/XZ over every archive byte up to and including the
 *    `end checkpoint` line.  The meta section declares it
 *    (`trailer crc64`) so a file truncated exactly at the trailer
 *    boundary is still detected.  File-based loads verify the trailer
 *    and reject mismatches (torn or corrupted archives); archives from
 *    pre-trailer writers carry neither the declaration nor the trailer
 *    and still load, with a warning.  Stream-based `loadCheckpoint`
 *    parses structure only (the bytes seen by a stream are whatever
 *    the caller staged; integrity is a property of files).
 *
 *    **Durability**: the file writer stages into `<path>.tmp`, fsyncs
 *    the temp file, renames it into place and fsyncs the directory, so
 *    a crash at any instant leaves either the old complete archive or
 *    the new complete archive -- never a torn one.  The publish path
 *    is threaded with util::FaultInjector crash points and write/
 *    truncate faults so the tests can prove exactly that.
 *
 *    After the model section a checkpoint may carry *optional* trailing
 *    sections.  The only one currently defined is `train`: the
 *    persistent training state (PCD particles, DBM chains, momentum
 *    buffers, fabric voltages) that `train::Session` needs for
 *    bit-exact resume.  Readers skip sections they do not recognize
 *    (tokens through the matching `end <name>`), so newer writers stay
 *    loadable; a missing train section merely downgrades resume to
 *    re-initialized chains.  Section payloads must never contain the
 *    bare token `end` (ours are numbers and single-token names).
 *
 * All values are written with max_digits10 precision, so text
 * round-trips reproduce the binary floats exactly (locale-independent).
 */

#ifndef ISINGRBM_RBM_SERIALIZE_HPP
#define ISINGRBM_RBM_SERIALIZE_HPP

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <variant>

#include "rbm/cf_rbm.hpp"
#include "rbm/class_rbm.hpp"
#include "rbm/conv_rbm.hpp"
#include "rbm/dbm.hpp"
#include "rbm/dbn.hpp"
#include "rbm/rbm.hpp"
#include "rbm/train_state.hpp"

namespace ising::rbm {

// ------------------------------------------------------------- v1 API

/** Write a model to a stream (legacy v1 format). */
void saveRbm(const Rbm &model, std::ostream &os);

/** Read a v1 model from a stream; fatal on malformed input. */
Rbm loadRbm(std::istream &is);

/** File-path convenience wrappers (fatal on IO errors). */
void saveRbm(const Rbm &model, const std::string &path);
Rbm loadRbmFile(const std::string &path);

/** DBN stack persistence (a layer count followed by each RBM). */
void saveDbn(const Dbn &stack, std::ostream &os);
Dbn loadDbn(std::istream &is);
void saveDbn(const Dbn &stack, const std::string &path);
Dbn loadDbnFile(const std::string &path);

// --------------------------------------------------- v2 checkpoint API

/**
 * Model families a checkpoint can carry.  The enumerator order is the
 * `Checkpoint::Payload` variant order (family() relies on it).
 */
enum class ModelFamily { Rbm, ClassRbm, CfRbm, ConvRbm, Dbn, Dbm };

/** Every family, in enumerator order (capability tables, listings). */
inline constexpr ModelFamily kAllModelFamilies[] = {
    ModelFamily::Rbm, ModelFamily::ClassRbm, ModelFamily::CfRbm,
    ModelFamily::ConvRbm, ModelFamily::Dbn, ModelFamily::Dbm};

/** Archive tag of a family ("rbm", "class_rbm", ...). */
const char *familyTag(ModelFamily family);

/** Inverse of familyTag; fatal on unknown tags. */
ModelFamily familyFromTag(const std::string &tag);

/** Training provenance carried inside a v2 checkpoint. */
struct CheckpointMeta
{
    std::string name;     ///< registry name ("" when unnamed)
    std::string backend;  ///< training engine tag ("cd", "gs", "bgf", ...)
    std::uint64_t seed = 0;
    int epoch = 0;        ///< epochs completed when the snapshot was taken
    /**
     * Epoch at which the session early-stopped (overfitting monitor),
     * or -1 when the run was never stopped early.  A resumed session
     * sees a non-negative value and treats the run as finished, so
     * `--resume` after an early stop is a no-op instead of a restart.
     */
    int earlyStopEpoch = -1;
    /**
     * Integrity-trailer algorithm the archive declared ("crc64"; empty
     * for archives from pre-trailer writers).  Read-only provenance:
     * the writer always emits the current algorithm regardless of this
     * field.
     */
    std::string trailer;
};

/** One self-describing model artifact: any family plus its metadata. */
struct Checkpoint
{
    using Payload = std::variant<Rbm, ClassRbm, CfRbm, ConvRbm, Dbn, Dbm>;

    CheckpointMeta meta;
    Payload model;

    /**
     * Persistent training state for exact resume (optional "train"
     * section).  Absent in archives written before the session layer,
     * by inference-only exporters, and in migrated v1 files.
     */
    std::optional<TrainState> train;

    ModelFamily
    family() const
    {
        return static_cast<ModelFamily>(model.index());
    }
};

/** Write a v2 checkpoint archive. */
void saveCheckpoint(const Checkpoint &ckpt, std::ostream &os);
void saveCheckpoint(const Checkpoint &ckpt, const std::string &path);

/**
 * Read a checkpoint: v2 archives of any family, or legacy v1
 * `Rbm`/`Dbn` files (migrated with default meta).  Fatal on anything
 * malformed.  The file overload additionally verifies the integrity
 * trailer (see the file comment); the stream overload checks structure
 * only.
 */
Checkpoint loadCheckpoint(std::istream &is);
Checkpoint loadCheckpointFile(const std::string &path);

/**
 * Non-fatal file load for supervising layers (the serving registry,
 * retry loops): returns the checkpoint, or std::nullopt with the
 * fatal diagnostic copied into @p error (when non-null).  The process
 * never exits through this call.
 */
std::optional<Checkpoint>
tryLoadCheckpointFile(const std::string &path,
                      std::string *error = nullptr);

/**
 * Read just the integrity trailer from an archive's tail (one small
 * read; no parse).  std::nullopt for legacy un-checksummed archives,
 * unreadable files, or anything that is not a checkpoint.  The
 * registry folds this into its revalidation stamp so an overwrite
 * that preserves (mtime, size) is still detected.
 */
std::optional<std::uint64_t> readArchiveTrailer(const std::string &path);

/** Conventional checkpoint file extension (".ckpt"). */
extern const char *const kCheckpointExtension;

} // namespace ising::rbm

#endif // ISINGRBM_RBM_SERIALIZE_HPP
