/**
 * @file
 * Model persistence: save and load trained RBMs (and DBN stacks) in a
 * small self-describing text format, so models trained once (in
 * software or read out of the substrate) can be shipped to inference.
 *
 * Format (line-oriented, locale-independent):
 *
 *   isingrbm-rbm v1
 *   <numVisible> <numHidden>
 *   <bv_0> ... <bv_{m-1}>
 *   <bh_0> ... <bh_{n-1}>
 *   <W_00> ... <W_0{n-1}>
 *   ...
 */

#ifndef ISINGRBM_RBM_SERIALIZE_HPP
#define ISINGRBM_RBM_SERIALIZE_HPP

#include <iosfwd>
#include <string>

#include "rbm/dbn.hpp"
#include "rbm/rbm.hpp"

namespace ising::rbm {

/** Write a model to a stream. */
void saveRbm(const Rbm &model, std::ostream &os);

/** Read a model from a stream; fatal on malformed input. */
Rbm loadRbm(std::istream &is);

/** File-path convenience wrappers (fatal on IO errors). */
void saveRbm(const Rbm &model, const std::string &path);
Rbm loadRbmFile(const std::string &path);

/** DBN stack persistence (a layer count followed by each RBM). */
void saveDbn(const Dbn &stack, std::ostream &os);
Dbn loadDbn(std::istream &is);
void saveDbn(const Dbn &stack, const std::string &path);
Dbn loadDbnFile(const std::string &path);

} // namespace ising::rbm

#endif // ISINGRBM_RBM_SERIALIZE_HPP
