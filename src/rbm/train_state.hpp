/**
 * @file
 * Persistent training state carried by a checkpoint alongside the
 * model parameters.
 *
 * Exact training resume needs more than weights: PCD particles, DBM
 * block-Gibbs chains, momentum buffers and fabric coupler voltages all
 * survive across epochs.  TrainState is the family-agnostic container
 * those live in: named 64-bit counters plus named float tensors, written
 * as an *optional* v2 checkpoint section ("section train") that readers
 * which do not understand it skip and whose absence downgrades resume
 * to re-initialized chains (with a warning) instead of failing.
 *
 * Names are namespaced by the producer ("cd.particles", "dbm.chain_v",
 * "bgf0.fabric_w", ...) and must be single whitespace-free tokens.
 */

#ifndef ISINGRBM_RBM_TRAIN_STATE_HPP
#define ISINGRBM_RBM_TRAIN_STATE_HPP

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"

namespace ising::rbm {

/** Named counters + tensors of one training run's persistent state. */
struct TrainState
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, linalg::Matrix>> tensors;

    bool
    empty() const
    {
        return counters.empty() && tensors.empty();
    }

    /** Look up a counter; nullptr when absent. */
    const std::uint64_t *
    counter(const std::string &name) const
    {
        for (const auto &[key, value] : counters)
            if (key == name)
                return &value;
        return nullptr;
    }

    /** Look up a tensor; nullptr when absent. */
    const linalg::Matrix *
    tensor(const std::string &name) const
    {
        for (const auto &[key, value] : tensors)
            if (key == name)
                return &value;
        return nullptr;
    }

    void
    setCounter(const std::string &name, std::uint64_t value)
    {
        counters.emplace_back(name, value);
    }

    void
    setTensor(const std::string &name, linalg::Matrix value)
    {
        tensors.emplace_back(name, std::move(value));
    }
};

/**
 * Pack a list of @p dim-wide chain/particle vectors into one tensor
 * (one chain per row) -- the shared shape every producer stores its
 * persistent chains in.
 */
inline linalg::Matrix
packChainTensor(const std::vector<linalg::Vector> &chains,
                std::size_t dim)
{
    linalg::Matrix out(chains.size(), dim);
    for (std::size_t c = 0; c < chains.size(); ++c)
        std::copy_n(chains[c].data(), dim, out.row(c));
    return out;
}

/**
 * Inverse of packChainTensor: validate the tensor and fill @p chains.
 * Returns false (leaving @p chains untouched) when the tensor is
 * absent, empty, or sized for a different @p dim.
 */
inline bool
unpackChainTensor(const linalg::Matrix *tensor, std::size_t dim,
                  std::vector<linalg::Vector> &chains)
{
    if (!tensor || tensor->cols() != dim || tensor->rows() == 0)
        return false;
    chains.assign(tensor->rows(), linalg::Vector(dim));
    for (std::size_t c = 0; c < chains.size(); ++c)
        std::copy_n(tensor->row(c), dim, chains[c].data());
    return true;
}

} // namespace ising::rbm

#endif // ISINGRBM_RBM_TRAIN_STATE_HPP
