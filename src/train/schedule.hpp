/**
 * @file
 * Shared training schedule: the per-epoch hyper-parameter ramps every
 * family used to hard-code (or not support at all).
 *
 * A Schedule is a pure function epoch -> EpochParams, which is what
 * makes checkpoint/resume exact: epoch e's learning rate, momentum,
 * weight decay and CD-k depth are identical whether the session
 * reached e in one run or across a resume, because nothing about them
 * is accumulated state.
 */

#ifndef ISINGRBM_TRAIN_SCHEDULE_HPP
#define ISINGRBM_TRAIN_SCHEDULE_HPP

namespace ising::train {

/** Linear ramp from start to end across the epoch budget. */
struct Ramp
{
    double start = 0.0;
    double end = 0.0;

    Ramp() = default;
    Ramp(double constant) : start(constant), end(constant) {}
    Ramp(double s, double e) : start(s), end(e) {}

    double
    at(int epoch, int totalEpochs) const
    {
        if (epoch <= 0 || totalEpochs <= 1)
            return start;
        if (epoch >= totalEpochs - 1)
            return end;
        const double t = static_cast<double>(epoch) /
                         static_cast<double>(totalEpochs - 1);
        return start + (end - start) * t;
    }
};

/** Resolved hyper-parameters of one epoch. */
struct EpochParams
{
    int epoch = 0;
    double learningRate = 0.1;
    double momentum = 0.0;
    double weightDecay = 0.0;
    int k = 1;  ///< CD steps / anneal sweeps this epoch
};

/** The session-wide training schedule. */
struct Schedule
{
    int epochs = 3;
    Ramp learningRate{0.1};
    Ramp momentum{0.0};
    Ramp weightDecay{0.0};
    int kStart = 1;
    int kEnd = 1;

    EpochParams
    at(int epoch) const
    {
        EpochParams p;
        p.epoch = epoch;
        p.learningRate = learningRate.at(epoch, epochs);
        p.momentum = momentum.at(epoch, epochs);
        p.weightDecay = weightDecay.at(epoch, epochs);
        // Integer ramp: round the linear interpolation, never below 1.
        const Ramp kRamp(static_cast<double>(kStart),
                         static_cast<double>(kEnd));
        const double k = kRamp.at(epoch, epochs);
        p.k = k < 1.0 ? 1 : static_cast<int>(k + 0.5);
        return p;
    }
};

} // namespace ising::train

#endif // ISINGRBM_TRAIN_SCHEDULE_HPP
