/**
 * @file
 * Session implementation: the one epoch loop, plus the family/trainer
 * capability table the CLI queries.
 */

#include "train/session.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/logging.hpp"

namespace ising::train {

const char *
trainerName(Trainer trainer)
{
    switch (trainer) {
      case Trainer::CdK: return "cd";
      case Trainer::GibbsSampler: return "gs";
      case Trainer::Bgf: return "bgf";
    }
    util::fatal("train: unknown trainer");
}

Trainer
trainerFromName(const std::string &name)
{
    for (const Trainer trainer :
         {Trainer::CdK, Trainer::GibbsSampler, Trainer::Bgf})
        if (name == trainerName(trainer))
            return trainer;
    util::fatal("train: unknown trainer '" + name +
                "' (use cd, gs or bgf)");
}

namespace {

/**
 * The family x trainer capability table.  cf_rbm's "bgf" row is its
 * hardware mode (per-event charge-pump updates through the emulated
 * substrate); families without a flat binary-visible layer cannot run
 * on the sampling substrates at all.
 */
struct CapabilityRow
{
    rbm::ModelFamily family;
    bool cd, gs, bgf;
};

constexpr CapabilityRow kCapabilities[] = {
    {rbm::ModelFamily::Rbm, true, true, true},
    {rbm::ModelFamily::ClassRbm, true, false, false},
    {rbm::ModelFamily::CfRbm, true, false, true},
    {rbm::ModelFamily::ConvRbm, true, false, false},
    {rbm::ModelFamily::Dbn, true, true, true},
    {rbm::ModelFamily::Dbm, true, false, false},
};

const CapabilityRow &
rowFor(rbm::ModelFamily family)
{
    for (const CapabilityRow &row : kCapabilities)
        if (row.family == family)
            return row;
    util::fatal("train: family missing from the capability table");
}

} // namespace

bool
supports(rbm::ModelFamily family, Trainer trainer)
{
    const CapabilityRow &row = rowFor(family);
    switch (trainer) {
      case Trainer::CdK: return row.cd;
      case Trainer::GibbsSampler: return row.gs;
      case Trainer::Bgf: return row.bgf;
    }
    return false;
}

std::string
supportedTrainerNames(rbm::ModelFamily family)
{
    std::string out;
    for (const Trainer trainer :
         {Trainer::CdK, Trainer::GibbsSampler, Trainer::Bgf}) {
        if (!supports(family, trainer))
            continue;
        out += out.empty() ? "" : ", ";
        out += trainerName(trainer);
    }
    return out;
}

std::string
unsupportedMessage(rbm::ModelFamily family, Trainer trainer)
{
    return std::string("family '") + rbm::familyTag(family) +
           "' does not support trainer '" + trainerName(trainer) +
           "' (supported: " + supportedTrainerNames(family) + ")";
}

Session::Session(std::unique_ptr<Strategy> strategy, SessionConfig config)
    : strategy_(std::move(strategy)), config_(std::move(config))
{
    if (!strategy_)
        util::fatal("session: null strategy");
}

util::Rng
Session::epochRng(std::uint64_t seed, int epoch)
{
    return util::Rng::stream(seed, static_cast<std::uint64_t>(epoch));
}

rbm::Checkpoint
Session::checkpoint() const
{
    rbm::Checkpoint ckpt;
    ckpt.meta.name = config_.name;
    ckpt.meta.backend = config_.backendTag;
    ckpt.meta.seed = config_.seed;
    ckpt.meta.epoch = epochsDone_;
    ckpt.meta.earlyStopEpoch = earlyStopEpoch_;
    ckpt.model = strategy_->snapshot();
    rbm::TrainState state;
    strategy_->captureState(state);
    if (!state.empty())
        ckpt.train = std::move(state);
    return ckpt;
}

void
Session::save() const
{
    // A continuously training session should survive a transient write
    // failure (full disk clearing up, a hiccuping network filesystem):
    // retry with a capped growing backoff, and only the *final*
    // attempt's failure is allowed to take the process down.  The
    // publish is atomic underneath (tmp + fsync + rename), so a failed
    // attempt never leaves a torn archive behind.
    const int attempts = std::max(1, config_.saveAttempts);
    const rbm::Checkpoint ckpt = checkpoint();
    for (int attempt = 1; attempt < attempts; ++attempt) {
        try {
            util::FatalThrowScope scope;
            rbm::saveCheckpoint(ckpt, config_.checkpointPath);
            return;
        } catch (const util::FatalError &e) {
            const int backoffMs =
                std::min(attempt * config_.saveRetryBackoffMs,
                         config_.saveRetryBackoffMaxMs);
            util::warn(util::strcat("session: checkpoint save attempt ",
                                    attempt, "/", attempts,
                                    " failed (retrying in ", backoffMs,
                                    " ms): ", e.what()));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoffMs));
        }
    }
    rbm::saveCheckpoint(ckpt, config_.checkpointPath);
}

void
Session::resume(const rbm::Checkpoint &ckpt)
{
    if (ckpt.family() != strategy_->family())
        util::fatal(std::string("session: cannot resume a '") +
                    rbm::familyTag(ckpt.family()) + "' checkpoint into a '" +
                    rbm::familyTag(strategy_->family()) + "' session");
    if (ckpt.meta.seed != config_.seed)
        util::fatal("session: resume seed mismatch (checkpoint "
                    "trained with a different --seed; construction-time "
                    "randomness already diverged)");
    if (ckpt.meta.epoch > config_.schedule.epochs)
        util::warn("session: checkpoint already has " +
                   std::to_string(ckpt.meta.epoch) +
                   " epochs, beyond the scheduled " +
                   std::to_string(config_.schedule.epochs));

    strategy_->restoreModel(ckpt.model);
    epochsDone_ = ckpt.meta.epoch;
    earlyStopEpoch_ = ckpt.meta.earlyStopEpoch;

    static const rbm::TrainState kEmpty;
    const rbm::TrainState &state = ckpt.train ? *ckpt.train : kEmpty;
    if (!strategy_->restoreState(state, epochsDone_))
        util::warn("session: checkpoint carries no persistent-chain "
                   "state; chains re-initialize (resume will not be "
                   "bit-identical to an uninterrupted run)");
}

void
Session::run()
{
    run(config_.schedule.epochs);
}

void
Session::run(int upToEpoch)
{
    // An early-stopped archive is a finished run: resuming it must
    // not restart the epoch loop (the stop epoch rode in the meta).
    if (earlyStopEpoch_ >= 0) {
        util::warn("session: checkpoint early-stopped at epoch " +
                   std::to_string(earlyStopEpoch_) +
                   "; resume is a no-op (start a fresh run to train "
                   "further)");
        return;
    }

    const Schedule &schedule = config_.schedule;
    const int last = std::min(upToEpoch, schedule.epochs);
    bool saved = false;
    for (int e = epochsDone_; e < last; ++e) {
        util::Rng rng = epochRng(config_.seed, e);
        strategy_->runEpoch(schedule.at(e), rng);
        epochsDone_ = e + 1;

        if (config_.monitor) {
            // The monitor draws from its own stream so switching it
            // on or off cannot perturb the training trajectory.
            util::Rng monitorRng =
                util::Rng::stream(config_.seed ^ 0x4d4f4e49544f52ull, e);
            strategy_->observe(*config_.monitor, e, monitorRng);
        }
        if (config_.onEpoch)
            config_.onEpoch(e, *this);

        if (config_.monitor && config_.earlyStopPatience > 0 &&
            config_.monitor->overfittingDetected(
                config_.earlyStopPatience)) {
            earlyStopEpoch_ = epochsDone_;
            util::warn("session: early stop at epoch " +
                       std::to_string(epochsDone_) +
                       " (held-out free-energy gap grew for " +
                       std::to_string(config_.earlyStopPatience) +
                       " epochs)");
            if (!config_.checkpointPath.empty())
                save();
            return;
        }

        saved = false;
        if (!config_.checkpointPath.empty()) {
            const bool last = epochsDone_ == schedule.epochs;
            if (last || (config_.checkpointEvery > 0 &&
                         epochsDone_ % config_.checkpointEvery == 0)) {
                save();
                saved = true;
            }
        }
    }
    // Sessions that were already complete (or scheduled zero epochs)
    // still leave an archive behind when one was requested.
    if (!config_.checkpointPath.empty() && !saved)
        save();
}

} // namespace ising::train
