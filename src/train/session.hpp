/**
 * @file
 * The unified training runtime: a type-erased Session that owns the
 * epoch loop for every model family.
 *
 * Mirroring how engine::Model unified *serving* across the six
 * families, train::Session unifies *training*: the epoch iteration,
 * hyper-parameter schedule, RNG threading, monitoring hooks and
 * periodic v2 checkpointing live here once, and family code
 * contributes only its gradient math through the Strategy interface.
 *
 * Determinism contract (tested per family at worker counts 1 and 4):
 * epoch e draws exclusively from util::Rng::stream(seed, e), and all
 * cross-epoch state (PCD particles, DBM chains, momentum buffers,
 * fabric voltages) round-trips through the checkpoint's train-state
 * section.  Training N epochs in one run is therefore bit-identical
 * to training k epochs, checkpointing, and resuming for N-k: the two
 * final archives match byte for byte.
 */

#ifndef ISINGRBM_TRAIN_SESSION_HPP
#define ISINGRBM_TRAIN_SESSION_HPP

#include <functional>
#include <memory>
#include <string>

#include "rbm/monitor.hpp"
#include "rbm/serialize.hpp"
#include "train/schedule.hpp"

namespace ising::train {

/** Training engines a session can schedule. */
enum class Trainer { CdK, GibbsSampler, Bgf };

/** CLI/checkpoint-meta tag of a trainer ("cd", "gs", "bgf"). */
const char *trainerName(Trainer trainer);

/** Parse a trainer spelling ("cd" | "gs" | "bgf"); fatal on unknown. */
Trainer trainerFromName(const std::string &name);

/** True when @p family can be trained by @p trainer. */
bool supports(rbm::ModelFamily family, Trainer trainer);

/** Comma-separated trainer tags a family supports ("cd, gs, bgf"). */
std::string supportedTrainerNames(rbm::ModelFamily family);

/**
 * The generated unsupported-combination diagnostic, shared by every
 * caller so the message never drifts per family again.
 */
std::string unsupportedMessage(rbm::ModelFamily family, Trainer trainer);

/**
 * What a family implements: one epoch of gradient math plus state IO.
 * A strategy is bound to its model and training data at construction;
 * the session owns iteration, schedule and persistence.
 */
class Strategy
{
  public:
    virtual ~Strategy() = default;

    /** Family persisted by snapshot(). */
    virtual rbm::ModelFamily family() const = 0;

    /** One full pass over the bound training data. */
    virtual void runEpoch(const EpochParams &params, util::Rng &rng) = 0;

    /** Copy of the current model as a checkpoint payload. */
    virtual rbm::Checkpoint::Payload snapshot() const = 0;

    /** Replace the model from a checkpoint payload (resume). */
    virtual void restoreModel(const rbm::Checkpoint::Payload &model) = 0;

    /** Persist cross-epoch state; default: stateless. */
    virtual void
    captureState(rbm::TrainState &state) const
    {
        (void)state;
    }

    /**
     * Restore captured state.  Returns false when expected state was
     * absent (the session warns: chains re-initialize on the next
     * epoch); stateless families return true.
     */
    virtual bool
    restoreState(const rbm::TrainState &state, int epochsDone)
    {
        (void)state;
        (void)epochsDone;
        return true;
    }

    /** Contribute per-epoch diagnostics; default: nothing. */
    virtual void
    observe(rbm::TrainingMonitor &monitor, int epoch,
            util::Rng &rng) const
    {
        (void)monitor;
        (void)epoch;
        (void)rng;
    }
};

/** Session knobs beyond the schedule. */
struct SessionConfig
{
    Schedule schedule;
    std::uint64_t seed = 1;
    std::string name;        ///< stamped into checkpoint meta ("" ok)
    std::string backendTag;  ///< checkpoint meta.backend ("cd", ...)

    /** Checkpoint archive path ("" disables persistence). */
    std::string checkpointPath;
    /** Periodic save cadence in epochs (0 = final snapshot only). */
    int checkpointEvery = 0;
    /**
     * Transient checkpoint-write failures (full disk clearing up, a
     * hiccuping network filesystem) are retried this many times with a
     * capped growing backoff before the run gives up; the final
     * attempt's failure is fatal.  The publish itself is atomic
     * (tmp + fsync + rename), so a failed attempt never leaves a torn
     * archive behind.
     */
    int saveAttempts = 3;
    /** Backoff before retry k is k * this, capped at the max. */
    int saveRetryBackoffMs = 50;
    int saveRetryBackoffMaxMs = 1000;

    /** Observed after every epoch when set (borrowed). */
    rbm::TrainingMonitor *monitor = nullptr;

    /**
     * Early stopping: when positive and a monitor is set, the run
     * stops (and checkpoints) as soon as the monitor's held-out
     * free-energy gap has grown for this many consecutive epochs.
     * The stop epoch is recorded in the checkpoint meta, so resuming
     * an early-stopped archive is a no-op rather than a restart.
     */
    int earlyStopPatience = 0;

    /** Called after every completed epoch (0-based index). */
    std::function<void(int epoch, class Session &session)> onEpoch;
};

/** The type-erased epoch loop. */
class Session
{
  public:
    Session(std::unique_ptr<Strategy> strategy, SessionConfig config);

    const SessionConfig &config() const { return config_; }
    Strategy &strategy() { return *strategy_; }
    const Strategy &strategy() const { return *strategy_; }

    /** Epochs completed so far (resume sets this from the archive). */
    int epochsDone() const { return epochsDone_; }

    /** Epoch the run early-stopped at; -1 while never stopped. */
    int earlyStopEpoch() const { return earlyStopEpoch_; }

    /**
     * Adopt a checkpoint: model payload, completed-epoch count and
     * persistent chain state.  The checkpoint's seed must match the
     * session's (construction-time draws already used it).  Missing
     * train state warns and falls back to re-initialized chains.
     */
    void resume(const rbm::Checkpoint &ckpt);

    /**
     * Run epochs [epochsDone, schedule.epochs).  Epoch e draws from
     * util::Rng::stream(seed, e); periodic checkpoints per config;
     * a final checkpoint is always written when a path is set.
     */
    void run();

    /**
     * Interrupted run: stop after epoch upToEpoch even though the
     * schedule continues (ramps keep their full-schedule shape, which
     * is what makes a later resume bit-identical to never stopping).
     */
    void run(int upToEpoch);

    /** Current state as a checkpoint (model + meta + train state). */
    rbm::Checkpoint checkpoint() const;

    /** The epoch-e training stream (exposed for tests/tools). */
    static util::Rng epochRng(std::uint64_t seed, int epoch);

  private:
    void save() const;

    std::unique_ptr<Strategy> strategy_;
    SessionConfig config_;
    int epochsDone_ = 0;
    int earlyStopEpoch_ = -1;  ///< set once the monitor stops the run
};

} // namespace ising::train

#endif // ISINGRBM_TRAIN_SESSION_HPP
