/**
 * @file
 * Family strategy implementations.
 */

#include "train/strategies.hpp"

#include <algorithm>
#include <utility>

#include "accel/gibbs_sampler.hpp"
#include "accel/parallel_bgf.hpp"
#include "data/dataset.hpp"
#include "rbm/cd_trainer.hpp"
#include "util/logging.hpp"

namespace ising::train {

namespace {

// Stream salts keeping construction, layer-entry and binarization
// randomness disjoint from the session's per-epoch streams.
constexpr std::uint64_t kFabricationSalt = 0x46414252ull;  // "FABR"
constexpr std::uint64_t kDbnLayerSalt = 0x44424e4cull;     // "DBNL"
constexpr std::uint64_t kDbnBinarizeSalt = 0x44424e42ull;  // "DBNB"

machine::AnalogConfig
analogFor(const TrainOptions &options)
{
    machine::AnalogConfig cfg;
    cfg.noise = options.noise;
    cfg.idealComponents = options.idealComponents;
    cfg.variationSeed = options.seed * 7919 + 13;
    return cfg;
}

void
requireSupport(rbm::ModelFamily family, const TrainOptions &options)
{
    if (!supports(family, options.trainer))
        util::fatal("train: " +
                    unsupportedMessage(family, options.trainer));
}

// ------------------------------------------------------- RBM engines
//
// The per-layer gradient math behind the Rbm and Dbn strategies: one
// epoch over a dataset through cd, gs or bgf, plus state IO.  Engines
// borrow the Rbm they train and keep it current after every epoch.

class RbmEngine
{
  public:
    virtual ~RbmEngine() = default;
    virtual void runEpoch(const data::Dataset &train,
                          const EpochParams &params, util::Rng &rng) = 0;
    virtual void capture(rbm::TrainState &state,
                         const std::string &prefix) const = 0;
    virtual bool restore(const rbm::TrainState &state,
                         const std::string &prefix) = 0;
    /** Called after the borrowed model was overwritten (resume). */
    virtual void onModelRestored() {}
};

class CdEngine : public RbmEngine
{
  public:
    CdEngine(rbm::Rbm &model, const TrainOptions &options)
        : trainer_(model, configFor(options))
    {
    }

    void
    runEpoch(const data::Dataset &train, const EpochParams &params,
             util::Rng &rng) override
    {
        trainer_.setSchedule(params.learningRate, params.k,
                             params.momentum, params.weightDecay);
        trainer_.trainEpoch(train, rng);
    }

    void
    capture(rbm::TrainState &state,
            const std::string &prefix) const override
    {
        trainer_.captureState(state, prefix + "cd.");
    }

    bool
    restore(const rbm::TrainState &state,
            const std::string &prefix) override
    {
        return trainer_.restoreState(state, prefix + "cd.");
    }

  private:
    static rbm::CdConfig
    configFor(const TrainOptions &options)
    {
        rbm::CdConfig cfg;
        cfg.batchSize = options.batchSize;
        cfg.persistent = options.persistentCd;
        cfg.numParticles = options.cdParticles;
        cfg.pool = options.pool;
        cfg.sampling.sparseThreshold = options.sparseThreshold;
        cfg.sampling.isa = options.isa;
        return cfg;
    }

    rbm::CdTrainer trainer_;
};

class GsEngine : public RbmEngine
{
  public:
    GsEngine(rbm::Rbm &model, const TrainOptions &options,
             std::uint64_t fabricationStream)
        : fabricationRng_(util::Rng::stream(
              options.seed ^ kFabricationSalt, fabricationStream)),
          accel_(model, configFor(options), fabricationRng_)
    {
    }

    void
    runEpoch(const data::Dataset &train, const EpochParams &params,
             util::Rng &rng) override
    {
        accel_.setSchedule(params.learningRate, params.k,
                           params.weightDecay);
        accel_.trainEpoch(train, rng);
    }

    // The GS substrate is stateless across epochs: the host model (in
    // the checkpoint payload) is the whole state, and the fabric's
    // fabrication lottery regenerates from the construction seed.
    void
    capture(rbm::TrainState &, const std::string &) const override
    {
    }

    bool
    restore(const rbm::TrainState &, const std::string &) override
    {
        return true;
    }

  private:
    static accel::GsConfig
    configFor(const TrainOptions &options)
    {
        accel::GsConfig cfg;
        cfg.batchSize = options.batchSize;
        cfg.analog = analogFor(options);
        return cfg;
    }

    util::Rng fabricationRng_;  ///< outlives accel_ (bound reference)
    accel::GibbsSamplerAccel accel_;
};

class BgfEngine : public RbmEngine
{
  public:
    BgfEngine(rbm::Rbm &model, const TrainOptions &options,
              std::uint64_t fabricationStream)
        : model_(model), rootSeed_(options.seed + fabricationStream),
          fabricationRng_(util::Rng::stream(
              options.seed ^ kFabricationSalt, fabricationStream)),
          fleet_(model.numVisible(), model.numHidden(),
                 configFor(options), fabricationRng_)
    {
        fleet_.initialize(model_);
    }

    void
    runEpoch(const data::Dataset &train, const EpochParams &params,
             util::Rng &rng) override
    {
        // The fleet derives every stream from (rootSeed, epoch); the
        // session's epoch rng is unused here.  Pump step and anneal
        // depth are fabric properties, so the lr/k ramps do not apply.
        (void)rng;
        fleet_.trainEpoch(train, rootSeed_, params.epoch);
        // Keep the borrowed host model current: snapshot() and the
        // monitor read it.  meanModel() is a pure readout.
        model_ = fleet_.meanModel();
    }

    void
    capture(rbm::TrainState &state,
            const std::string &prefix) const override
    {
        fleet_.captureState(state, prefix + "bgf.");
    }

    bool
    restore(const rbm::TrainState &state,
            const std::string &prefix) override
    {
        return fleet_.restoreState(state, prefix + "bgf.");
    }

    void
    onModelRestored() override
    {
        // Fallback programming (quantized); an exact raw-state restore
        // follows when the checkpoint carries the train section.
        fleet_.initialize(model_);
    }

  private:
    accel::ParallelBgfConfig
    configFor(const TrainOptions &options)
    {
        accel::ParallelBgfConfig cfg;
        cfg.numReplicas = std::max<std::size_t>(1, options.bgfReplicas);
        cfg.syncEveryEpochs = options.bgfSyncEvery;
        cfg.pool = options.pool;
        cfg.replica.learningRate = options.bgfPumpStep;
        cfg.replica.annealSteps = options.bgfAnnealSteps;
        cfg.replica.numParticles = options.bgfParticles;
        cfg.replica.analog = analogFor(options);
        return cfg;
    }

    rbm::Rbm &model_;
    std::uint64_t rootSeed_;
    util::Rng fabricationRng_;  ///< outlives fleet_ (bound reference)
    accel::ParallelBgf fleet_;
};

std::unique_ptr<RbmEngine>
makeEngine(rbm::Rbm &model, const TrainOptions &options,
           std::uint64_t fabricationStream)
{
    switch (options.trainer) {
      case Trainer::CdK:
        return std::make_unique<CdEngine>(model, options);
      case Trainer::GibbsSampler:
        return std::make_unique<GsEngine>(model, options,
                                          fabricationStream);
      case Trainer::Bgf:
        return std::make_unique<BgfEngine>(model, options,
                                           fabricationStream);
    }
    util::fatal("train: unknown trainer");
}

// ------------------------------------------------------ RbmStrategy

class RbmStrategy : public Strategy
{
  public:
    RbmStrategy(rbm::Rbm model, const data::Dataset &train,
                const TrainOptions &options)
        : model_(std::move(model)), train_(train),
          engine_(makeEngine(model_, options, 0))
    {
    }

    rbm::ModelFamily family() const override
    {
        return rbm::ModelFamily::Rbm;
    }

    void
    runEpoch(const EpochParams &params, util::Rng &rng) override
    {
        engine_->runEpoch(train_, params, rng);
    }

    rbm::Checkpoint::Payload snapshot() const override { return model_; }

    void
    restoreModel(const rbm::Checkpoint::Payload &model) override
    {
        model_ = std::get<rbm::Rbm>(model);
        engine_->onModelRestored();
    }

    void
    captureState(rbm::TrainState &state) const override
    {
        engine_->capture(state, "");
    }

    bool
    restoreState(const rbm::TrainState &state, int) override
    {
        return engine_->restore(state, "");
    }

    void
    observe(rbm::TrainingMonitor &monitor, int epoch,
            util::Rng &rng) const override
    {
        monitor.observe(epoch, model_, rng);
    }

  private:
    rbm::Rbm model_;
    const data::Dataset &train_;
    std::unique_ptr<RbmEngine> engine_;
};

// ------------------------------------------------- ClassRbmStrategy

class ClassRbmStrategy : public Strategy
{
  public:
    ClassRbmStrategy(rbm::ClassRbm model, const data::Dataset &train,
                     const TrainOptions &options)
        : model_(std::move(model)), train_(train),
          batchSize_(options.batchSize)
    {
    }

    rbm::ModelFamily family() const override
    {
        return rbm::ModelFamily::ClassRbm;
    }

    void
    runEpoch(const EpochParams &params, util::Rng &rng) override
    {
        rbm::ClassRbmConfig cfg;
        cfg.learningRate = params.learningRate;
        cfg.k = params.k;
        cfg.batchSize = batchSize_;
        cfg.weightDecay = params.weightDecay;
        model_.trainEpoch(train_, cfg, rng);
    }

    rbm::Checkpoint::Payload snapshot() const override { return model_; }

    void
    restoreModel(const rbm::Checkpoint::Payload &model) override
    {
        model_ = std::get<rbm::ClassRbm>(model);
    }

    void
    observe(rbm::TrainingMonitor &monitor, int epoch,
            util::Rng &) const override
    {
        const data::Dataset &sample = monitor.trainSample();
        const double errorRate =
            sample.labels.empty() ? 0.0 : 1.0 - model_.accuracy(sample);
        monitor.observeWeights(epoch, -1, model_.joint().weights(),
                               errorRate);
    }

  private:
    rbm::ClassRbm model_;
    const data::Dataset &train_;
    std::size_t batchSize_;
};

// --------------------------------------------------- CfRbmStrategy

class CfRbmStrategy : public Strategy
{
  public:
    CfRbmStrategy(rbm::CfRbm model, const data::RatingData &corpus,
                  const TrainOptions &options)
        : model_(std::move(model)), corpus_(corpus),
          index_(model_.itemIndex(corpus))  // immutable across epochs
    {
        baseConfig_.k = 1;
        if (options.trainer == Trainer::Bgf) {
            rbm::CfHardwareMode hw;
            hw.noise = options.noise;
            hw.variationSeed = options.seed * 7919 + 13;
            baseConfig_.hardware = hw;
        }
    }

    rbm::ModelFamily family() const override
    {
        return rbm::ModelFamily::CfRbm;
    }

    void
    runEpoch(const EpochParams &params, util::Rng &rng) override
    {
        rbm::CfConfig cfg = baseConfig_;
        cfg.learningRate = params.learningRate;
        cfg.k = params.k;
        cfg.weightDecay = params.weightDecay;
        model_.trainEpoch(corpus_, index_, cfg, rng);
    }

    rbm::Checkpoint::Payload snapshot() const override { return model_; }

    void
    restoreModel(const rbm::Checkpoint::Payload &model) override
    {
        model_ = std::get<rbm::CfRbm>(model);
    }

    void
    observe(rbm::TrainingMonitor &monitor, int epoch,
            util::Rng &) const override
    {
        monitor.observeWeights(epoch, -1, model_.weights(),
                               model_.testMae(corpus_));
    }

  private:
    rbm::CfRbm model_;
    const data::RatingData &corpus_;
    rbm::CfRbm::ItemIndex index_;
    rbm::CfConfig baseConfig_;
};

// -------------------------------------------------- ConvRbmStrategy

class ConvRbmStrategy : public Strategy
{
  public:
    ConvRbmStrategy(rbm::ConvRbm model, const data::Dataset &train)
        : model_(std::move(model)), train_(train)
    {
    }

    rbm::ModelFamily family() const override
    {
        return rbm::ModelFamily::ConvRbm;
    }

    void
    runEpoch(const EpochParams &params, util::Rng &rng) override
    {
        model_.config().learningRate = params.learningRate;
        model_.config().weightDecay = params.weightDecay;
        model_.trainEpoch(train_, rng);
    }

    rbm::Checkpoint::Payload snapshot() const override { return model_; }

    void
    restoreModel(const rbm::Checkpoint::Payload &model) override
    {
        model_ = std::get<rbm::ConvRbm>(model);
    }

    void
    observe(rbm::TrainingMonitor &monitor, int epoch,
            util::Rng &) const override
    {
        monitor.observeWeights(
            epoch, -1, model_.filters(),
            model_.reconstructionError(monitor.trainSample()));
    }

  private:
    rbm::ConvRbm model_;
    const data::Dataset &train_;
};

// ------------------------------------------------------ DbnStrategy

class DbnStrategy : public Strategy
{
  public:
    DbnStrategy(rbm::Dbn model, const data::Dataset &train,
                const TrainOptions &options, int epochsPerLayer)
        : model_(std::move(model)), train_(train), options_(options),
          epochsPerLayer_(std::max(1, epochsPerLayer))
    {
    }

    rbm::ModelFamily family() const override
    {
        return rbm::ModelFamily::Dbn;
    }

    void
    runEpoch(const EpochParams &params, util::Rng &rng) override
    {
        const int layer = layerOf(params.epoch);
        if (layer != currentLayer_)
            enterLayer(layer);
        EpochParams local = params;
        local.epoch = params.epoch - layer * epochsPerLayer_;
        engine_->runEpoch(*active_, local, rng);
    }

    rbm::Checkpoint::Payload snapshot() const override { return model_; }

    void
    restoreModel(const rbm::Checkpoint::Payload &model) override
    {
        model_ = std::get<rbm::Dbn>(model);
        currentLayer_ = -1;  // forces re-entry (layer data, engine)
        engine_.reset();
    }

    void
    captureState(rbm::TrainState &state) const override
    {
        // Persisted so a resume cannot silently remap epochs onto the
        // wrong layers when --epochs changes between runs.
        state.setCounter("dbn.epochs_per_layer",
                         static_cast<std::uint64_t>(epochsPerLayer_));
        if (engine_)
            engine_->capture(state, layerPrefix(currentLayer_));
    }

    bool
    restoreState(const rbm::TrainState &state, int epochsDone) override
    {
        if (const std::uint64_t *perLayer =
                state.counter("dbn.epochs_per_layer"))
            if (*perLayer != static_cast<std::uint64_t>(epochsPerLayer_))
                util::fatal(
                    "train: dbn checkpoint was trained at " +
                    std::to_string(*perLayer) +
                    " epochs per layer, this session at " +
                    std::to_string(epochsPerLayer_) +
                    " (pass the original --epochs on resume)");
        if (epochsDone <= 0 ||
            epochsDone >= epochsPerLayer_ *
                              static_cast<int>(model_.numLayers()))
            return true;  // nothing mid-flight to restore
        const int layer = epochsDone / epochsPerLayer_;
        enterLayer(layer);
        if (epochsDone % epochsPerLayer_ == 0)
            return true;  // the layer starts fresh next epoch
        return engine_->restore(state, layerPrefix(layer));
    }

    void
    observe(rbm::TrainingMonitor &monitor, int epoch,
            util::Rng &rng) const override
    {
        const int trained = std::min(layerOf(epoch),
                                     static_cast<int>(model_.numLayers()) - 1);
        // Layer 0 matches the monitor's datasets: full record.  Upper
        // layers contribute weight statistics.
        monitor.observe(epoch, 0, model_.layer(0), rng);
        for (int l = 1; l <= trained; ++l)
            monitor.observeWeights(epoch, l,
                                   model_.layer(l).weights(), 0.0);
    }

  private:
    int
    layerOf(int epoch) const
    {
        const int layer = epoch / epochsPerLayer_;
        const int top = static_cast<int>(model_.numLayers()) - 1;
        return layer > top ? top : layer;
    }

    static std::string
    layerPrefix(int layer)
    {
        return "dbn.l" + std::to_string(layer) + ".";
    }

    void
    enterLayer(int layer)
    {
        // Layer data: propagated mean activations, binarized through a
        // pure (seed, layer) stream so resume rebuilds the same bits.
        if (layer == 0) {
            active_ = &train_;
        } else {
            util::Rng binRng = util::Rng::stream(
                options_.seed ^ kDbnBinarizeSalt,
                static_cast<std::uint64_t>(layer));
            layerData_ = data::binarize(
                model_.transform(train_, static_cast<std::size_t>(layer)),
                binRng);
            active_ = &layerData_;
        }
        engine_ = makeEngine(model_.layer(layer), options_,
                             kDbnLayerSalt + static_cast<std::uint64_t>(layer));
        currentLayer_ = layer;
    }

    rbm::Dbn model_;
    const data::Dataset &train_;
    TrainOptions options_;
    int epochsPerLayer_;

    int currentLayer_ = -1;
    data::Dataset layerData_;
    const data::Dataset *active_ = nullptr;
    std::unique_ptr<RbmEngine> engine_;
};

// ------------------------------------------------------ DbmStrategy

class DbmStrategy : public Strategy
{
  public:
    DbmStrategy(rbm::Dbm model, const data::Dataset &train,
                const rbm::DbmConfig &config)
        : model_(std::move(model)), train_(train), config_(config)
    {
    }

    rbm::ModelFamily family() const override
    {
        return rbm::ModelFamily::Dbm;
    }

    void
    runEpoch(const EpochParams &params, util::Rng &rng) override
    {
        rbm::DbmConfig cfg = config_;
        cfg.learningRate = params.learningRate;
        cfg.weightDecay = params.weightDecay;
        cfg.gibbsStepsPerUpdate = params.k;
        // Greedy pre-training is part of epoch 0, so a resumed session
        // (model restored from the archive) never repeats it.
        if (params.epoch == 0)
            model_.pretrain(train_, cfg, rng);
        model_.trainEpoch(train_, cfg, rng);
    }

    rbm::Checkpoint::Payload snapshot() const override { return model_; }

    void
    restoreModel(const rbm::Checkpoint::Payload &model) override
    {
        model_ = std::get<rbm::Dbm>(model);
    }

    void
    captureState(rbm::TrainState &state) const override
    {
        model_.captureChains(state, "dbm.");
    }

    bool
    restoreState(const rbm::TrainState &state, int epochsDone) override
    {
        if (epochsDone <= 0)
            return true;  // chains materialize during epoch 0
        return model_.restoreChains(state, "dbm.");
    }

    void
    observe(rbm::TrainingMonitor &monitor, int epoch,
            util::Rng &) const override
    {
        monitor.observeWeights(
            epoch, 0, model_.w1(),
            model_.reconstructionError(monitor.trainSample(),
                                       config_.meanFieldIters));
        monitor.observeWeights(epoch, 1, model_.w2(), 0.0);
    }

  private:
    rbm::Dbm model_;
    const data::Dataset &train_;
    rbm::DbmConfig config_;
};

} // namespace

double
defaultWeightDecay(rbm::ModelFamily family)
{
    switch (family) {
      case rbm::ModelFamily::Rbm: return 0.0;
      case rbm::ModelFamily::ClassRbm: return 2e-4;
      case rbm::ModelFamily::CfRbm: return 1e-3;
      case rbm::ModelFamily::ConvRbm: return 1e-4;
      case rbm::ModelFamily::Dbn: return 0.0;
      case rbm::ModelFamily::Dbm: return 1e-3;
    }
    return 0.0;
}

std::unique_ptr<Strategy>
makeRbmStrategy(rbm::Rbm model, const data::Dataset &train,
                const TrainOptions &options)
{
    requireSupport(rbm::ModelFamily::Rbm, options);
    return std::make_unique<RbmStrategy>(std::move(model), train,
                                         options);
}

std::unique_ptr<Strategy>
makeClassRbmStrategy(rbm::ClassRbm model, const data::Dataset &train,
                     const TrainOptions &options)
{
    requireSupport(rbm::ModelFamily::ClassRbm, options);
    if (train.labels.empty())
        util::fatal("train: class_rbm requires labeled data");
    return std::make_unique<ClassRbmStrategy>(std::move(model), train,
                                              options);
}

std::unique_ptr<Strategy>
makeCfRbmStrategy(rbm::CfRbm model, const data::RatingData &corpus,
                  const TrainOptions &options)
{
    requireSupport(rbm::ModelFamily::CfRbm, options);
    if (model.numUsers() != corpus.numUsers ||
        model.numStars() != corpus.numStars)
        util::fatal("train: cf_rbm model is sized for " +
                    std::to_string(model.numUsers()) + " users x " +
                    std::to_string(model.numStars()) +
                    " stars, but the corpus has " +
                    std::to_string(corpus.numUsers) + " x " +
                    std::to_string(corpus.numStars) +
                    " (pass the original --users/--items on resume)");
    return std::make_unique<CfRbmStrategy>(std::move(model), corpus,
                                           options);
}

std::unique_ptr<Strategy>
makeConvRbmStrategy(rbm::ConvRbm model, const data::Dataset &train,
                    const TrainOptions &options)
{
    requireSupport(rbm::ModelFamily::ConvRbm, options);
    const std::size_t side = model.config().imageSide;
    if (train.dim() != side * side)
        util::fatal("train: conv_rbm expects " + std::to_string(side) +
                    "x" + std::to_string(side) + " images, got dim " +
                    std::to_string(train.dim()));
    return std::make_unique<ConvRbmStrategy>(std::move(model), train);
}

std::unique_ptr<Strategy>
makeDbnStrategy(rbm::Dbn model, const data::Dataset &train,
                const TrainOptions &options, int epochsPerLayer)
{
    requireSupport(rbm::ModelFamily::Dbn, options);
    return std::make_unique<DbnStrategy>(std::move(model), train,
                                         options, epochsPerLayer);
}

std::unique_ptr<Strategy>
makeDbmStrategy(rbm::Dbm model, const data::Dataset &train,
                const TrainOptions &options, const rbm::DbmConfig &config)
{
    requireSupport(rbm::ModelFamily::Dbm, options);
    (void)options;
    return std::make_unique<DbmStrategy>(std::move(model), train,
                                         config);
}

} // namespace ising::train
