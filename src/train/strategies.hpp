/**
 * @file
 * Session strategies for the six model families.
 *
 * Each maker binds a model and its training data to the family's
 * gradient math (CdTrainer for flat RBMs, the GS/BGF substrates where
 * the capability table allows, ClassRbm/CfRbm/ConvRbm/Dbm native CD,
 * greedy per-layer engines for the DBN) and returns a train::Strategy
 * the Session can iterate.  Construction-time randomness (weight init
 * is the caller's, but fabric fabrication happens here) derives from
 * TrainOptions::seed, so rebuilding a strategy with the same options
 * reproduces the same machine -- the property CLI --resume relies on.
 */

#ifndef ISINGRBM_TRAIN_STRATEGIES_HPP
#define ISINGRBM_TRAIN_STRATEGIES_HPP

#include <memory>

#include "data/dataset.hpp"
#include "data/ratings.hpp"
#include "exec/thread_pool.hpp"
#include "ising/noise.hpp"
#include "linalg/simd_dispatch.hpp"
#include "train/session.hpp"

namespace ising::train {

/** Family-agnostic training options (structural; ramps live in Schedule). */
struct TrainOptions
{
    Trainer trainer = Trainer::CdK;
    std::size_t batchSize = 50;

    // CD-specific structure.
    bool persistentCd = false;    ///< PCD: keep negative chains
    std::size_t cdParticles = 16; ///< persistent chain count
    /**
     * Sparse kernel crossover forwarded to CdConfig::sampling
     * (negative = the calibrated default; see rbm::SamplingOptions).
     */
    double sparseThreshold = -1.0;
    /**
     * SIMD kernel tier forwarded to CdConfig::sampling (Auto = the
     * ISINGRBM_ISA env, then CPUID; see rbm::SamplingOptions::isa).
     */
    linalg::simd::IsaTier isa = linalg::simd::IsaTier::Auto;

    // Substrate trainers (GS/BGF and cf_rbm hardware mode).
    machine::NoiseSpec noise;     ///< analog (variation, noise) RMS
    bool idealComponents = false; ///< bypass circuit non-idealities
    std::size_t bgfParticles = 8;
    std::size_t bgfReplicas = 1;  ///< >1 trains a ParallelBgf fleet
    int bgfSyncEvery = 1;         ///< fleet model-averaging cadence
    /**
     * BGF charge-pump step and anneal depth are fabric properties
     * fixed at fabrication, not schedulable ramps; callers set the
     * pump step to learningRate / batchSize per the paper.
     */
    double bgfPumpStep = 2e-3;
    int bgfAnnealSteps = 5;

    std::uint64_t seed = 1;       ///< construction-time randomness root
    exec::ThreadPool *pool = nullptr; ///< borrowed; nullptr = global
};

/**
 * Historical per-family weight-decay defaults (what each private loop
 * hard-coded before the session refactor); callers seed
 * Schedule::weightDecay with this unless the user overrides.
 */
double defaultWeightDecay(rbm::ModelFamily family);

/** Flat RBM through cd, gs or bgf (per the capability table). */
std::unique_ptr<Strategy> makeRbmStrategy(rbm::Rbm model,
                                          const data::Dataset &train,
                                          const TrainOptions &options);

/** Discriminative RBM (cd only). */
std::unique_ptr<Strategy> makeClassRbmStrategy(rbm::ClassRbm model,
                                               const data::Dataset &train,
                                               const TrainOptions &options);

/** CF-RBM on a rating corpus; trainer bgf selects hardware mode. */
std::unique_ptr<Strategy> makeCfRbmStrategy(rbm::CfRbm model,
                                            const data::RatingData &corpus,
                                            const TrainOptions &options);

/** Convolutional RBM (cd only); data must be square images. */
std::unique_ptr<Strategy> makeConvRbmStrategy(rbm::ConvRbm model,
                                              const data::Dataset &train,
                                              const TrainOptions &options);

/**
 * Greedy DBN: session epoch e trains layer e / epochsPerLayer with the
 * options' engine; propagated layer data (binarized) regenerates
 * deterministically on resume.
 */
std::unique_ptr<Strategy> makeDbnStrategy(rbm::Dbn model,
                                          const data::Dataset &train,
                                          const TrainOptions &options,
                                          int epochsPerLayer);

/**
 * DBM: greedy pre-training runs inside epoch 0, then each session
 * epoch is one joint mean-field/PCD pass.  @p config carries the
 * structural knobs (chains, mean-field iters, pretrain epochs,
 * sparsity); learning rate / decay / Gibbs steps follow the schedule.
 */
std::unique_ptr<Strategy> makeDbmStrategy(rbm::Dbm model,
                                          const data::Dataset &train,
                                          const TrainOptions &options,
                                          const rbm::DbmConfig &config);

} // namespace ising::train

#endif // ISINGRBM_TRAIN_STRATEGIES_HPP
