/**
 * @file
 * CRC-64/XZ implementation (table-driven, one table built at startup).
 */

#include "util/checksum.hpp"

#include <array>
#include <cctype>

namespace ising::util {

namespace {

/** ECMA-182 polynomial, reflected form. */
constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ull;

std::array<std::uint64_t, 256>
buildTable()
{
    std::array<std::uint64_t, 256> table{};
    for (std::uint64_t byte = 0; byte < 256; ++byte) {
        std::uint64_t crc = byte;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ (kPoly & (~(crc & 1) + 1));
        table[static_cast<std::size_t>(byte)] = crc;
    }
    return table;
}

const std::array<std::uint64_t, 256> &
table()
{
    static const std::array<std::uint64_t, 256> kTable = buildTable();
    return kTable;
}

} // namespace

void
Crc64::update(const void *data, std::size_t n)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    const auto &t = table();
    std::uint64_t crc = state_;
    for (std::size_t i = 0; i < n; ++i)
        crc = t[static_cast<unsigned char>(crc) ^ bytes[i]] ^ (crc >> 8);
    state_ = crc;
}

std::uint64_t
crc64(std::string_view data)
{
    Crc64 crc;
    crc.update(data.data(), data.size());
    return crc.value();
}

std::string
crc64Hex(std::uint64_t value)
{
    static const char *kDigits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
        value >>= 4;
    }
    return out;
}

bool
parseCrc64Hex(const std::string &text, std::uint64_t &out)
{
    if (text.size() != 16)
        return false;
    std::uint64_t value = 0;
    for (const char c : text) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return false;
        value = (value << 4) | static_cast<std::uint64_t>(digit);
    }
    out = value;
    return true;
}

} // namespace ising::util
