/**
 * @file
 * CRC-64 archive integrity checksum.
 *
 * Checkpoint archives are rename-published while a serving process may
 * reload them at any moment; the trailer checksum is what lets a
 * reader distinguish "complete archive" from "torn or corrupted
 * bytes" without trusting the filesystem.  The variant is CRC-64/XZ
 * (ECMA-182 polynomial, reflected, init/xorout all-ones) -- the same
 * parameters xz-utils uses, so external tooling can re-verify a
 * trailer.
 */

#ifndef ISINGRBM_UTIL_CHECKSUM_HPP
#define ISINGRBM_UTIL_CHECKSUM_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ising::util {

/** Incremental CRC-64/XZ over a byte stream. */
class Crc64
{
  public:
    /** Fold @p n bytes into the running checksum. */
    void update(const void *data, std::size_t n);

    /** Checksum of everything folded in so far. */
    std::uint64_t value() const { return ~state_; }

  private:
    std::uint64_t state_ = ~0ull;
};

/** One-shot convenience over a contiguous buffer. */
std::uint64_t crc64(std::string_view data);

/** Fixed-width lowercase hex spelling used in archive trailers. */
std::string crc64Hex(std::uint64_t value);

/**
 * Parse a crc64Hex spelling.  Returns false (leaving @p out untouched)
 * unless @p text is exactly 16 lowercase/uppercase hex digits.
 */
bool parseCrc64Hex(const std::string &text, std::uint64_t &out);

} // namespace ising::util

#endif // ISINGRBM_UTIL_CHECKSUM_HPP
