/**
 * @file
 * Flag-parsing implementation.
 */

#include "util/cli.hpp"

#include <cstdlib>

namespace ising::util {

CliArgs::CliArgs(int argc, char **argv)
{
    if (argc > 0)
        positional_.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        const auto eq = body.find('=');
        if (eq != std::string::npos) {
            flags_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            flags_[body] = argv[++i];
        } else {
            flags_[body] = "";
        }
    }
}

bool
CliArgs::has(const std::string &name) const
{
    return flags_.count(name) > 0;
}

std::string
CliArgs::get(const std::string &name, const std::string &dflt) const
{
    const auto it = flags_.find(name);
    return it == flags_.end() ? dflt : it->second;
}

long
CliArgs::getInt(const std::string &name, long dflt) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty())
        return dflt;
    char *end = nullptr;
    const long v = std::strtol(it->second.c_str(), &end, 10);
    return (end && *end == '\0') ? v : dflt;
}

double
CliArgs::getDouble(const std::string &name, double dflt) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty())
        return dflt;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    return (end && *end == '\0') ? v : dflt;
}

bool
CliArgs::getBool(const std::string &name, bool dflt) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return dflt;
    const std::string &v = it->second;
    if (v.empty() || v == "1" || v == "true" || v == "yes")
        return true;
    if (v == "0" || v == "false" || v == "no")
        return false;
    return dflt;
}

} // namespace ising::util
