/**
 * @file
 * Flag-parsing implementation.
 */

#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/logging.hpp"

namespace ising::util {

CliArgs::CliArgs(int argc, char **argv)
{
    if (argc > 0)
        positional_.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        const auto eq = body.find('=');
        std::string name, value;
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            name = body;
            value = argv[++i];
        } else {
            name = body;
        }
        if (!flags_.count(name))
            flagOrder_.push_back(name);
        flags_[name] = value;
    }
}

bool
CliArgs::has(const std::string &name) const
{
    return flags_.count(name) > 0;
}

std::string
CliArgs::get(const std::string &name, const std::string &dflt) const
{
    const auto it = flags_.find(name);
    return it == flags_.end() ? dflt : it->second;
}

long
CliArgs::getInt(const std::string &name, long dflt) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return dflt;
    if (it->second.empty()) {
        warn(strcat("cli: --", name, " given without a value; using "
                    "default ", dflt));
        return dflt;
    }
    char *end = nullptr;
    const long v = std::strtol(it->second.c_str(), &end, 10);
    if (!end || *end != '\0') {
        warn(strcat("cli: malformed integer '", it->second, "' for --",
                    name, "; using default ", dflt));
        return dflt;
    }
    return v;
}

double
CliArgs::getDouble(const std::string &name, double dflt) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return dflt;
    if (it->second.empty()) {
        warn(strcat("cli: --", name, " given without a value; using "
                    "default ", dflt));
        return dflt;
    }
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (!end || *end != '\0') {
        warn(strcat("cli: malformed number '", it->second, "' for --",
                    name, "; using default ", dflt));
        return dflt;
    }
    return v;
}

bool
CliArgs::getBool(const std::string &name, bool dflt) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return dflt;
    const std::string &v = it->second;
    if (v.empty() || v == "1" || v == "true" || v == "yes")
        return true;
    if (v == "0" || v == "false" || v == "no")
        return false;
    warn(strcat("cli: malformed boolean '", v, "' for --", name,
                "; using default ", dflt ? "true" : "false"));
    return dflt;
}

std::string
CliArgs::subcommand() const
{
    return positional_.size() > 1 ? positional_[1] : "";
}

std::vector<std::string>
CliArgs::unknown(const std::vector<std::string> &known) const
{
    std::vector<std::string> out;
    for (const std::string &name : flagOrder_)
        if (std::find(known.begin(), known.end(), name) == known.end())
            out.push_back(name);
    return out;
}

std::string
usageText(const std::string &usage, const std::vector<FlagHelp> &flags)
{
    std::size_t width = 0;
    std::vector<std::string> heads;
    heads.reserve(flags.size());
    for (const FlagHelp &f : flags) {
        std::string head = "--" + f.name;
        if (!f.value.empty())
            head += " <" + f.value + ">";
        width = std::max(width, head.size());
        heads.push_back(std::move(head));
    }
    std::ostringstream os;
    os << "usage: " << usage << "\n";
    for (std::size_t i = 0; i < flags.size(); ++i) {
        os << "  " << heads[i]
           << std::string(width - heads[i].size() + 2, ' ')
           << flags[i].text << "\n";
    }
    return os.str();
}

std::vector<std::string>
knownFlagNames(const std::vector<FlagHelp> &flags)
{
    std::vector<std::string> names = {"help"};
    for (const FlagHelp &f : flags)
        names.push_back(f.name);
    return names;
}

std::vector<std::size_t>
parseSizeList(const std::string &text)
{
    std::vector<std::size_t> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        // Digits only: strtoul would silently wrap "-1" to ULONG_MAX.
        if (item.empty() ||
            item.find_first_not_of("0123456789") != std::string::npos)
            fatal("cli: malformed size list entry '" + item + "' in '" +
                  text + "'");
        char *end = nullptr;
        const unsigned long v = std::strtoul(item.c_str(), &end, 10);
        if (!end || *end != '\0' || v == 0 || v > (1ul << 24))
            fatal("cli: size list entry '" + item + "' out of range in '" +
                  text + "'");
        out.push_back(static_cast<std::size_t>(v));
    }
    if (out.empty())
        fatal("cli: empty size list '" + text + "'");
    return out;
}

} // namespace ising::util
