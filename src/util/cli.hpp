/**
 * @file
 * Tiny command-line flag parser shared by the isingrbm multi-tool,
 * examples and bench binaries.
 *
 * Supports "--name value", "--name=value" and boolean "--name" forms,
 * plus an optional leading subcommand word for multi-tool binaries
 * ("isingrbm train --epochs 3").  Unknown flags are collected so
 * google-benchmark can still consume its own arguments from the
 * remainder; unknown() reports them for binaries that own their whole
 * command line.  Malformed numeric values fall back to the default
 * after a warning through util/logging (never silently).
 */

#ifndef ISINGRBM_UTIL_CLI_HPP
#define ISINGRBM_UTIL_CLI_HPP

#include <map>
#include <string>
#include <vector>

namespace ising::util {

/** Parsed view of argv with typed accessors and defaults. */
class CliArgs
{
  public:
    CliArgs() = default;

    /** Parse argv; never throws, malformed values warn and fall back. */
    CliArgs(int argc, char **argv);

    /** True if --name was present in any form. */
    bool has(const std::string &name) const;

    /** String flag with default. */
    std::string get(const std::string &name, const std::string &dflt) const;

    /** Integer flag with default (warns on malformed values). */
    long getInt(const std::string &name, long dflt) const;

    /** Floating-point flag with default (warns on malformed values). */
    double getDouble(const std::string &name, double dflt) const;

    /** Boolean flag: present without value, or value in {0,1,true,false}. */
    bool getBool(const std::string &name, bool dflt) const;

    /** argv entries not consumed as --flags (argv[0] preserved first). */
    const std::vector<std::string> &positional() const { return positional_; }

    /**
     * The first bare word after argv[0] ("" when none): the subcommand
     * of a multi-tool binary ("isingrbm train ...").
     */
    std::string subcommand() const;

    /** True when --help was passed (any value). */
    bool helpRequested() const { return has("help"); }

    /**
     * Flags that were passed but are not in @p known, in command-line
     * order.  Binaries that own their full command line use this to
     * reject typos instead of silently ignoring them.
     */
    std::vector<std::string> unknown(
        const std::vector<std::string> &known) const;

  private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> flagOrder_;  ///< parse order for unknown()
    std::vector<std::string> positional_;
};

/** One flag's entry in generated --help text. */
struct FlagHelp
{
    std::string name;   ///< flag name without the leading "--"
    std::string value;  ///< value placeholder ("N", "cd|gs|bgf", ...)
    std::string text;   ///< one-line description (include the default)
};

/**
 * Render generated help: a usage banner followed by one aligned line
 * per flag.  The FlagHelp names double as the unknown() allowlist.
 */
std::string usageText(const std::string &usage,
                      const std::vector<FlagHelp> &flags);

/** The FlagHelp names as an unknown() allowlist ("help" included). */
std::vector<std::string> knownFlagNames(const std::vector<FlagHelp> &flags);

/** Parse a comma-separated size list ("96,48"); fatal on malformed. */
std::vector<std::size_t> parseSizeList(const std::string &text);

} // namespace ising::util

#endif // ISINGRBM_UTIL_CLI_HPP
