/**
 * @file
 * Tiny command-line flag parser shared by examples and bench binaries.
 *
 * Supports "--name value", "--name=value" and boolean "--name" forms.
 * Unknown flags are collected so google-benchmark can still consume its
 * own arguments from the remainder.
 */

#ifndef ISINGRBM_UTIL_CLI_HPP
#define ISINGRBM_UTIL_CLI_HPP

#include <map>
#include <string>
#include <vector>

namespace ising::util {

/** Parsed view of argv with typed accessors and defaults. */
class CliArgs
{
  public:
    CliArgs() = default;

    /** Parse argv; never throws, malformed values fall back to defaults. */
    CliArgs(int argc, char **argv);

    /** True if --name was present in any form. */
    bool has(const std::string &name) const;

    /** String flag with default. */
    std::string get(const std::string &name, const std::string &dflt) const;

    /** Integer flag with default. */
    long getInt(const std::string &name, long dflt) const;

    /** Floating-point flag with default. */
    double getDouble(const std::string &name, double dflt) const;

    /** Boolean flag: present without value, or value in {0,1,true,false}. */
    bool getBool(const std::string &name, bool dflt) const;

    /** argv entries not consumed as --flags (argv[0] preserved first). */
    const std::vector<std::string> &positional() const { return positional_; }

  private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

} // namespace ising::util

#endif // ISINGRBM_UTIL_CLI_HPP
