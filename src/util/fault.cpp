/**
 * @file
 * FaultInjector implementation: rule parsing and the hook logic.
 */

#include "util/fault.hpp"

#include <cstdlib>

#include "util/logging.hpp"

namespace ising::util {

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

FaultInjector::FaultInjector()
{
    if (const char *env = std::getenv("ISINGRBM_FAULTS"))
        if (*env)
            configure(env);
}

bool
FaultInjector::armed() const
{
    return any_.load(std::memory_order_relaxed);
}

void
FaultInjector::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    rules_.clear();
    any_.store(false, std::memory_order_relaxed);
}

namespace {

/** Strict non-negative integer parse; fatal on anything else. */
std::uint64_t
parseNumber(const std::string &text, const std::string &rule)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        fatal("fault: bad number '" + text + "' in rule '" + rule + "'");
    return std::strtoull(text.c_str(), nullptr, 10);
}

} // namespace

void
FaultInjector::configure(const std::string &spec)
{
    std::vector<Rule> parsed;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        std::size_t end = spec.find_first_of(",;", begin);
        if (end == std::string::npos)
            end = spec.size();
        const std::string text = spec.substr(begin, end - begin);
        begin = end + 1;
        if (text.empty())
            continue;

        const std::size_t colon = text.find(':');
        if (colon == std::string::npos)
            fatal("fault: rule '" + text +
                  "' needs a kind (crash:, failwrite:, truncate:)");
        const std::string kindName = text.substr(0, colon);
        std::string rest = text.substr(colon + 1);

        Rule rule;
        if (kindName == "crash")
            rule.kind = Kind::Crash;
        else if (kindName == "failwrite")
            rule.kind = Kind::FailWrite;
        else if (kindName == "truncate")
            rule.kind = Kind::Truncate;
        else if (kindName == "netdrop")
            rule.kind = Kind::NetDrop;
        else if (kindName == "netstall")
            rule.kind = Kind::NetStall;
        else
            fatal("fault: unknown rule kind '" + kindName + "' in '" +
                  text + "'");

        // Optional @N / @everyK trailer.
        const std::size_t at = rest.rfind('@');
        if (at != std::string::npos) {
            const std::string when = rest.substr(at + 1);
            rest = rest.substr(0, at);
            if (when.rfind("every", 0) == 0) {
                rule.every = static_cast<int>(
                    parseNumber(when.substr(5), text));
                if (rule.every <= 0)
                    fatal("fault: @every needs a positive period in '" +
                          text + "'");
            } else {
                rule.at = static_cast<int>(parseNumber(when, text));
                if (rule.at <= 0)
                    fatal("fault: @N must be positive in '" + text + "'");
            }
        }

        // truncate carries a =<bytes> payload.
        if (rule.kind == Kind::Truncate) {
            const std::size_t eq = rest.find('=');
            if (eq == std::string::npos)
                fatal("fault: truncate rule '" + text +
                      "' needs =<bytes>");
            rule.bytes = parseNumber(rest.substr(eq + 1), text);
            rest = rest.substr(0, eq);
        }

        if (rest.empty())
            fatal("fault: rule '" + text + "' has an empty key");
        rule.key = rest;
        parsed.push_back(std::move(rule));
    }

    std::lock_guard<std::mutex> lock(mutex_);
    for (Rule &rule : parsed)
        rules_.push_back(std::move(rule));
    any_.store(!rules_.empty(), std::memory_order_relaxed);
}

FaultInjector::Rule *
FaultInjector::match(Kind kind, const std::string &key)
{
    // Caller holds no lock; all rule traffic is serialized here.
    for (Rule &rule : rules_) {
        if (rule.kind != kind)
            continue;
        const bool matches = kind == Kind::Crash
                                 ? key == rule.key
                                 : key.find(rule.key) != std::string::npos;
        if (!matches)
            continue;
        ++rule.hits;
        const bool fires = rule.every > 0 ? rule.hits % rule.every == 0
                                          : rule.hits == rule.at;
        if (fires)
            return &rule;
    }
    return nullptr;
}

void
FaultInjector::onCrashPoint(const std::string &point)
{
    if (!armed())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (match(Kind::Crash, point)) {
        // No flushing, no atexit handlers: behave like a kill -9 as
        // closely as a library can.
        std::_Exit(kCrashExitCode);
    }
}

bool
FaultInjector::shouldFailWrite(const std::string &path)
{
    if (!armed())
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    if (match(Kind::FailWrite, path)) {
        warn("fault: injected write failure for " + path);
        return true;
    }
    return false;
}

std::optional<std::uint64_t>
FaultInjector::truncateBytes(const std::string &path)
{
    if (!armed())
        return std::nullopt;
    std::lock_guard<std::mutex> lock(mutex_);
    if (const Rule *rule = match(Kind::Truncate, path)) {
        warn(strcat("fault: truncating archive for ", path, " to ",
                    rule->bytes, " bytes"));
        return rule->bytes;
    }
    return std::nullopt;
}

FaultInjector::NetFault
FaultInjector::netFault(const std::string &key)
{
    if (!armed())
        return NetFault::None;
    std::lock_guard<std::mutex> lock(mutex_);
    // Drop takes priority; both kinds advance their own hit counters
    // so one connection can carry independent drop and stall rules.
    if (match(Kind::NetDrop, key)) {
        warn("fault: injected connection drop for " + key);
        return NetFault::Drop;
    }
    if (match(Kind::NetStall, key)) {
        warn("fault: injected connection stall for " + key);
        return NetFault::Stall;
    }
    return NetFault::None;
}

} // namespace ising::util
