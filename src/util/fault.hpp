/**
 * @file
 * Deterministic fault injection for the durability tests.
 *
 * The crash/corruption guarantees (a kill mid-checkpoint never loses
 * the previous archive, a torn write is rejected by the trailer
 * checksum, the registry degrades to its last-good model) are only
 * real if they can be produced on demand.  The FaultInjector threads a
 * handful of hooks through the checkpoint publish path so tests -- and
 * whole child processes in the CLI smoke stage -- can deterministically
 * fail the Nth write, truncate a published archive at byte K, or kill
 * the process at a named crash point.
 *
 * Faults are armed programmatically (tests) or through the
 * `ISINGRBM_FAULTS` environment variable (processes), a comma/
 * semicolon-separated rule list:
 *
 *   crash:<point>[@N|@everyK]        _Exit(42) at the named crash point
 *   failwrite:<substr>[@N|@everyK]   fail a checkpoint write whose
 *                                    destination path contains substr
 *   truncate:<substr>=<bytes>[@N|@everyK]
 *                                    truncate the temp archive to
 *                                    <bytes> before it is published
 *                                    (a torn-write simulator)
 *   netdrop:<substr>[@N|@everyK]     close a serving connection whose
 *                                    key contains substr mid-frame
 *                                    (a client/kernel reset simulator)
 *   netstall:<substr>[@N|@everyK]    freeze a serving connection's
 *                                    writes (a dead-peer simulator;
 *                                    the idle timeout must reap it)
 *
 * `@N` fires on the Nth matching hit only (default @1); `@everyK`
 * fires on every Kth.  Crash points currently wired:
 * checkpoint.before-write, checkpoint.after-temp-write,
 * checkpoint.before-rename, checkpoint.after-rename,
 * promote.before-publish, promote.after-publish, and in the
 * live-canary promote path: canary.stage (candidate staging),
 * canary.before-promote (gate passed, nothing published yet) and
 * canary.after-promote (candidate published and installed) -- the
 * publish in between also crosses promote.before/after-publish.
 *
 * Everything is a no-op (one relaxed atomic load) when no faults are
 * armed, so production binaries pay nothing.
 */

#ifndef ISINGRBM_UTIL_FAULT_HPP
#define ISINGRBM_UTIL_FAULT_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace ising::util {

/** Process-wide fault-rule table; see the file comment for the DSL. */
class FaultInjector
{
  public:
    /** Exit code of an injected crash (distinct from fatal()'s 1). */
    static constexpr int kCrashExitCode = 42;

    /** The process singleton; arms ISINGRBM_FAULTS on first use. */
    static FaultInjector &instance();

    /** Parse and arm a rule list; fatal on malformed specs. */
    void configure(const std::string &spec);

    /** Disarm everything and reset hit counters (tests). */
    void reset();

    /** True when any rule is armed (the fast path's only check). */
    bool armed() const;

    // ------------------------------------------------------------ hooks

    /** Kill the process (_Exit(42)) when a crash rule matches. */
    void onCrashPoint(const std::string &point);

    /** True when a write to @p path should fail this time. */
    bool shouldFailWrite(const std::string &path);

    /** Bytes to truncate @p path's archive to, when a rule matches. */
    std::optional<std::uint64_t> truncateBytes(const std::string &path);

    /** Socket-path fault decisions for the net server's write path. */
    enum class NetFault {
        None,   ///< no rule fired: write normally
        Drop,   ///< close the connection mid-frame
        Stall,  ///< stop writing; the peer looks alive but dead
    };

    /** The fault (if any) to apply to connection @p key this write. */
    NetFault netFault(const std::string &key);

  private:
    FaultInjector();

    enum class Kind { Crash, FailWrite, Truncate, NetDrop, NetStall };

    struct Rule
    {
        Kind kind;
        std::string key;          ///< crash-point name or path substring
        std::uint64_t bytes = 0;  ///< truncate target
        int at = 1;               ///< fire on the at-th hit...
        int every = 0;            ///< ...or on every every-th hit
        int hits = 0;
    };

    /** Find a matching armed rule and advance its hit counter. */
    Rule *match(Kind kind, const std::string &key);

    mutable std::mutex mutex_;
    std::vector<Rule> rules_;
    std::atomic<bool> any_{false};
};

} // namespace ising::util

#endif // ISINGRBM_UTIL_FAULT_HPP
