/**
 * @file
 * Histogram implementation: bucket mapping and quantile walk.
 */

#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ising::util {

std::size_t
Histogram::bucketOf(std::uint64_t value)
{
    // Values below one full octave of sub-buckets are exact.
    if (value < (1ull << kSubBits))
        return static_cast<std::size_t>(value);
    // Otherwise keep the top kSubBits bits after the leading one: the
    // octave index selects the block, those bits the linear sub-bucket.
    const int msb = 63 - std::countl_zero(value);
    const int shift = msb - kSubBits;
    const std::uint64_t sub = (value >> shift) & ((1ull << kSubBits) - 1);
    return (static_cast<std::size_t>(msb - kSubBits + 1) << kSubBits) |
           static_cast<std::size_t>(sub);
}

std::uint64_t
Histogram::bucketLow(std::size_t bucket)
{
    const std::size_t octave = bucket >> kSubBits;
    const std::uint64_t sub = bucket & ((1ull << kSubBits) - 1);
    if (octave == 0)
        return sub;
    const int shift = static_cast<int>(octave) - 1;
    return (1ull << (kSubBits + shift)) | (sub << shift);
}

void
Histogram::record(std::uint64_t value)
{
    if (counts_.empty())
        counts_.assign(kBuckets, 0);
    ++counts_[bucketOf(value)];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double
Histogram::mean() const
{
    return count_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    if (!(q > 0.0))
        return min_;
    if (q >= 1.0)
        return max_;
    // Rank of the requested sample (1-based); walk the cumulative
    // counts to the bucket holding it.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count_))));
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        cumulative += counts_[b];
        if (cumulative >= rank)
            return std::clamp(bucketLow(b), min_, max_);
    }
    return max_;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    if (counts_.empty())
        counts_.assign(kBuckets, 0);
    for (std::size_t b = 0; b < kBuckets; ++b)
        counts_[b] += other.counts_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = ~0ull;
    max_ = 0;
}

} // namespace ising::util
