/**
 * @file
 * Log-bucketed latency recorder (HDR-histogram style).
 *
 * The serving path needs tail quantiles (p99, p99.9) over millions of
 * nanosecond-scale samples without storing them: Histogram buckets
 * values logarithmically -- every power-of-two octave is split into
 * 2^kSubBits linear sub-buckets -- so recording is two shifts and an
 * increment, memory is a fixed ~15 KB table for the full 64-bit range,
 * and any quantile is recoverable to within one sub-bucket (a relative
 * error of at most 1/2^kSubBits, ~3%).  Values below 2^kSubBits land
 * in exact unit buckets.
 *
 * Histograms merge by bucket-wise addition, so per-connection or
 * per-thread recorders combine into one distribution exactly (merge is
 * associative and commutative -- enforced by tests/test_histogram.cpp).
 * Shared by engine::Server::stats() (per-flush latency), the net
 * server, and the loadgen client.
 */

#ifndef ISINGRBM_UTIL_HISTOGRAM_HPP
#define ISINGRBM_UTIL_HISTOGRAM_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ising::util {

/** Fixed-memory log-bucketed recorder of non-negative 64-bit values. */
class Histogram
{
  public:
    /** Sub-bucket resolution: 2^5 = 32 linear buckets per octave. */
    static constexpr int kSubBits = 5;

    /** Record one value (typically a latency in nanoseconds). */
    void record(std::uint64_t value);

    /** Samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Sum of all recorded values (saturating semantics not needed:
     *  2^64 ns is ~585 years of accumulated latency). */
    std::uint64_t sum() const { return sum_; }

    /** Exact extremes (0 when empty). */
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /**
     * The value at quantile @p q in [0, 1]: the lower bound of the
     * bucket holding the ceil(q * count)-th smallest sample, clamped
     * to [min(), max()] (so quantile(0) == min(), quantile(1) == max()
     * exactly).  Returns 0 when empty; q outside [0, 1] clamps.
     */
    std::uint64_t quantile(double q) const;

    /** Bucket-wise addition of @p other into this. */
    void merge(const Histogram &other);

    /** Forget everything (buckets keep their capacity). */
    void clear();

  private:
    static std::size_t bucketOf(std::uint64_t value);
    static std::uint64_t bucketLow(std::size_t bucket);

    /** Buckets for the full uint64 range at kSubBits resolution. */
    static constexpr std::size_t kBuckets =
        static_cast<std::size_t>(64 - kSubBits + 1) << kSubBits;

    std::vector<std::uint64_t> counts_;  ///< sized lazily on first record
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ull;
    std::uint64_t max_ = 0;
};

} // namespace ising::util

#endif // ISINGRBM_UTIL_HISTOGRAM_HPP
