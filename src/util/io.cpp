/**
 * @file
 * Durable file IO helpers (POSIX fsync; no-ops elsewhere).
 */

#include "util/io.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#define ISINGRBM_HAVE_FSYNC 1
#include <fcntl.h>
#include <unistd.h>
#endif

namespace ising::util {

namespace {

#ifdef ISINGRBM_HAVE_FSYNC
bool
syncPath(const std::string &path, int openFlags, std::string *error)
{
    const int fd = ::open(path.c_str(), openFlags);
    if (fd < 0) {
        if (error)
            *error = path + ": open: " + std::strerror(errno);
        return false;
    }
    const bool ok = ::fsync(fd) == 0;
    if (!ok && error)
        *error = path + ": fsync: " + std::strerror(errno);
    ::close(fd);
    return ok;
}
#endif

} // namespace

bool
fsyncFile(const std::string &path, std::string *error)
{
#ifdef ISINGRBM_HAVE_FSYNC
    return syncPath(path, O_RDONLY, error);
#else
    (void)path;
    (void)error;
    return true;
#endif
}

bool
fsyncParentDir(const std::string &path, std::string *error)
{
#ifdef ISINGRBM_HAVE_FSYNC
    std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (parent.empty())
        parent = ".";
    return syncPath(parent.string(), O_RDONLY | O_DIRECTORY, error);
#else
    (void)path;
    (void)error;
    return true;
#endif
}

bool
slurpFile(const std::string &path, std::string &out, std::string *error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (error)
            *error = "cannot open for reading: " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    if (is.bad()) {
        if (error)
            *error = "read failed: " + path;
        return false;
    }
    out = buffer.str();
    return true;
}

} // namespace ising::util
