/**
 * @file
 * Durable file IO helpers for the checkpoint publish path.
 *
 * Rename-atomicity alone only orders the *names*; without an fsync of
 * the temp file a crash after the rename can still publish a file
 * whose data blocks never reached the disk -- exactly the torn archive
 * the rename was supposed to prevent.  These helpers pin the data
 * (fsyncFile) and the directory entry (fsyncParentDir) on platforms
 * that support it, and degrade to no-ops elsewhere.
 */

#ifndef ISINGRBM_UTIL_IO_HPP
#define ISINGRBM_UTIL_IO_HPP

#include <string>

namespace ising::util {

/**
 * Flush a file's data and metadata to stable storage.
 * Returns false (with errno-style detail in @p error when non-null)
 * when the file cannot be opened or synced.
 */
bool fsyncFile(const std::string &path, std::string *error = nullptr);

/**
 * Flush the directory entry containing @p path (after a rename, the
 * new name itself needs to be durable).  Best-effort: failures are
 * reported but some filesystems do not support directory fsync.
 */
bool fsyncParentDir(const std::string &path, std::string *error = nullptr);

/**
 * Read a whole file into a string.  Returns false (with detail in
 * @p error when non-null) when the file cannot be opened or read.
 */
bool slurpFile(const std::string &path, std::string &out,
               std::string *error = nullptr);

} // namespace ising::util

#endif // ISINGRBM_UTIL_IO_HPP
