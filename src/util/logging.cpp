/**
 * @file
 * Logging sink: stderr with a short level tag.
 */

#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ising::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};

const char *
tag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
      default:              return "?";
    }
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    std::fprintf(stderr, "[%s] %s\n", tag(level), msg.c_str());
}

namespace {

thread_local bool g_fatalThrows = false;

} // namespace

FatalThrowScope::FatalThrowScope() : prev_(g_fatalThrows)
{
    g_fatalThrows = true;
}

FatalThrowScope::~FatalThrowScope()
{
    g_fatalThrows = prev_;
}

bool
fatalThrows()
{
    return g_fatalThrows;
}

void
fatal(const std::string &msg)
{
    if (g_fatalThrows)
        throw FatalError(msg);
    std::fprintf(stderr, "[fatal] %s\n", msg.c_str());
    std::exit(1);
}

} // namespace ising::util
