/**
 * @file
 * Minimal leveled logging used by trainers and benches.
 *
 * Modeled loosely on gem5's inform()/warn() family: these calls report
 * status to the user and never abort the program; fatal() exits with an
 * error code for user-level misconfiguration.
 */

#ifndef ISINGRBM_UTIL_LOGGING_HPP
#define ISINGRBM_UTIL_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace ising::util {

/** Severity levels in increasing order of urgency. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Global threshold; messages below it are discarded. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Emit one line at the given level (no newline needed). */
void logMessage(LogLevel level, const std::string &msg);

/** Informative message users should know but not worry about. */
inline void
inform(const std::string &msg)
{
    logMessage(LogLevel::Info, msg);
}

/** Something may be off but execution can continue. */
inline void
warn(const std::string &msg)
{
    logMessage(LogLevel::Warn, msg);
}

/** Debug chatter, off by default. */
inline void
debug(const std::string &msg)
{
    logMessage(LogLevel::Debug, msg);
}

/**
 * Unrecoverable user-level error: print and exit(1).
 *
 * Inside a FatalThrowScope (same thread), it throws FatalError instead
 * of exiting, so a supervising layer -- the serving path, a
 * checkpoint-write retry loop -- can contain the failure to one
 * request or one attempt rather than the whole process.
 */
[[noreturn]] void fatal(const std::string &msg);

/** What fatal() throws while a FatalThrowScope is active. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * RAII guard: while alive, fatal() on this thread throws FatalError.
 * Scopes nest (the outermost restores exit-on-fatal), and the flag is
 * thread-local -- a scope on the serving thread does not change what
 * fatal() does on worker threads.
 */
class FatalThrowScope
{
  public:
    FatalThrowScope();
    ~FatalThrowScope();
    FatalThrowScope(const FatalThrowScope &) = delete;
    FatalThrowScope &operator=(const FatalThrowScope &) = delete;

  private:
    bool prev_;
};

/** True when fatal() on this thread would throw instead of exit. */
bool fatalThrows();

/** printf-style convenience built on ostringstream. */
template <typename... Args>
std::string
strcat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace ising::util

#endif // ISINGRBM_UTIL_LOGGING_HPP
