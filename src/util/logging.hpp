/**
 * @file
 * Minimal leveled logging used by trainers and benches.
 *
 * Modeled loosely on gem5's inform()/warn() family: these calls report
 * status to the user and never abort the program; fatal() exits with an
 * error code for user-level misconfiguration.
 */

#ifndef ISINGRBM_UTIL_LOGGING_HPP
#define ISINGRBM_UTIL_LOGGING_HPP

#include <sstream>
#include <string>

namespace ising::util {

/** Severity levels in increasing order of urgency. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Global threshold; messages below it are discarded. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Emit one line at the given level (no newline needed). */
void logMessage(LogLevel level, const std::string &msg);

/** Informative message users should know but not worry about. */
inline void
inform(const std::string &msg)
{
    logMessage(LogLevel::Info, msg);
}

/** Something may be off but execution can continue. */
inline void
warn(const std::string &msg)
{
    logMessage(LogLevel::Warn, msg);
}

/** Debug chatter, off by default. */
inline void
debug(const std::string &msg)
{
    logMessage(LogLevel::Debug, msg);
}

/** Unrecoverable user-level error: print and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** printf-style convenience built on ostringstream. */
template <typename... Args>
std::string
strcat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace ising::util

#endif // ISINGRBM_UTIL_LOGGING_HPP
