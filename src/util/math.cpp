/**
 * @file
 * Implementations for the non-inline numeric helpers.
 */

#include "util/math.hpp"

#include <cassert>
#include <limits>

namespace ising::util {

double
logSumExp(const double *v, std::size_t n)
{
    if (n == 0)
        return -std::numeric_limits<double>::infinity();
    double m = v[0];
    for (std::size_t i = 1; i < n; ++i)
        m = std::max(m, v[i]);
    if (!std::isfinite(m))
        return m;
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc += std::exp(v[i] - m);
    return m + std::log(acc);
}

double
geometricMean(const std::vector<double> &v)
{
    assert(!v.empty());
    double acc = 0.0;
    for (double x : v) {
        assert(x > 0.0);
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(v.size()));
}

} // namespace ising::util
