/**
 * @file
 * Small numeric helpers shared across modules.
 */

#ifndef ISINGRBM_UTIL_MATH_HPP
#define ISINGRBM_UTIL_MATH_HPP

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace ising::util {

/** Numerically safe logistic function 1 / (1 + exp(-x)). */
inline double
sigmoid(double x)
{
    if (x >= 0.0) {
        const double z = std::exp(-x);
        return 1.0 / (1.0 + z);
    }
    const double z = std::exp(x);
    return z / (1.0 + z);
}

/** Float variant used by inner loops. */
inline float
sigmoidf(float x)
{
    if (x >= 0.0f) {
        const float z = std::exp(-x);
        return 1.0f / (1.0f + z);
    }
    const float z = std::exp(x);
    return z / (1.0f + z);
}

/** log(1 + exp(x)) without overflow: the softplus function. */
inline double
softplus(double x)
{
    if (x > 30.0)
        return x;
    if (x < -30.0)
        return std::exp(x);
    return std::log1p(std::exp(x));
}

/** Clamp helper mirroring std::clamp but tolerant of reversed bounds. */
inline double
clampTo(double x, double lo, double hi)
{
    if (lo > hi)
        std::swap(lo, hi);
    return std::min(hi, std::max(lo, x));
}

/**
 * Numerically stable log-sum-exp over a buffer.
 *
 * Returns log(sum_i exp(v[i])).  Used by the exact partition-function
 * enumeration and by AIS weight averaging.
 */
double logSumExp(const double *v, std::size_t n);

/** Convenience overload. */
inline double
logSumExp(const std::vector<double> &v)
{
    return logSumExp(v.data(), v.size());
}

/** Geometric mean of strictly positive values. */
double geometricMean(const std::vector<double> &v);

/** Spin <-> bit conversions used by the QUBO/Ising mapping sigma = 2b-1. */
inline int
bitToSpin(int b)
{
    return 2 * b - 1;
}

inline int
spinToBit(int s)
{
    return (s + 1) / 2;
}

} // namespace ising::util

#endif // ISINGRBM_UTIL_MATH_HPP
