/**
 * @file
 * xoshiro256++ implementation (public-domain reference by Blackman &
 * Vigna) plus the derived samplers.
 */

#include "util/rng.hpp"

#include <cmath>

namespace ising::util {

namespace {

/** splitmix64 step used for seeding and stream splitting. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
    hasSpare_ = false;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    // Lemire's multiply-shift rejection method: unbiased and cheap.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
        const std::uint64_t threshold = (0 - n) % n;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double k = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * k;
    hasSpare_ = true;
    return u * k;
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

int
Rng::sign()
{
    return (next() >> 63) ? 1 : -1;
}

Rng
Rng::split()
{
    // Use two fresh draws to derive a decorrelated child seed.
    std::uint64_t s = next() ^ rotl(next(), 31);
    return Rng(s);
}

Rng
Rng::stream(std::uint64_t rootSeed, std::uint64_t streamIndex)
{
    // Two chained splitmix64 finalizers decorrelate neighbouring
    // stream indices; the child seed is then expanded the usual way.
    std::uint64_t s = rootSeed;
    std::uint64_t mixed = splitmix64(s) ^ rotl(streamIndex, 17);
    std::uint64_t t = mixed + streamIndex;
    return Rng(splitmix64(t));
}

void
Rng::shuffle(std::size_t *idx, std::size_t n)
{
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = uniformInt(i);
        std::swap(idx[i - 1], idx[j]);
    }
}

} // namespace ising::util
