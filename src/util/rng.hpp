/**
 * @file
 * Deterministic pseudo-random number generation for the whole library.
 *
 * Every stochastic component in the simulator (Gibbs chains, annealing
 * flips, analog noise injection, dataset synthesis) draws from an
 * explicitly seeded Rng instance so that experiments are reproducible
 * bit-for-bit across runs.  The generator is xoshiro256++ seeded through
 * splitmix64, which is fast, has a 256-bit state and passes BigCrush.
 */

#ifndef ISINGRBM_UTIL_RNG_HPP
#define ISINGRBM_UTIL_RNG_HPP

#include <array>
#include <cstdint>
#include <cstddef>

namespace ising::util {

/**
 * xoshiro256++ pseudo-random generator with convenience samplers.
 *
 * The class satisfies the C++ UniformRandomBitGenerator requirements so
 * it can also be plugged into <random> distributions, but the built-in
 * samplers below avoid libstdc++'s per-call overhead and are what the
 * hot loops use.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void reseed(std::uint64_t seed);

    /**
     * Next raw 64-bit draw.  Defined inline (with the [0,1) float
     * conversions below) because every unit latched by the sampling
     * kernels costs one draw: keeping the xoshiro step visible to the
     * caller's optimizer removes a cross-TU call from the innermost
     * Gibbs loops.
     */
    std::uint64_t
    next()
    {
        const std::uint64_t result =
            rotl(state_[0] + state_[3], 23) + state_[0];
        const std::uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    std::uint64_t operator()() { return next(); }

    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ull; }

    /** Uniform double in [0, 1): 53 high-quality bits. */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [0, 1). */
    float
    uniformFloat()
    {
        return static_cast<float>(next() >> 40) * 0x1.0p-24f;
    }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n), n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal draw (Box-Muller with cached spare). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli draw: true with probability p. */
    bool bernoulli(double p) { return uniform() < p; }

    /** Random sign: +1 with probability 1/2, otherwise -1. */
    int sign();

    /**
     * Derive an independent child generator.
     *
     * Used to hand each parallel chain / particle its own stream without
     * correlation between streams.  Consumes state, so the order of
     * split() calls matters; for schedule-independent streams under
     * concurrency use stream() instead.
     */
    Rng split();

    /**
     * Deterministic stream derivation: the generator for
     * (rootSeed, streamIndex) is a pure function of its arguments.
     * Parallel loops hand stream i to work item i, making results
     * reproducible for any worker count or execution order.
     */
    static Rng stream(std::uint64_t rootSeed, std::uint64_t streamIndex);

    /** Fisher-Yates shuffle of an index buffer. */
    void shuffle(std::size_t *idx, std::size_t n);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
    double spare_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace ising::util

#endif // ISINGRBM_UTIL_RNG_HPP
