/**
 * @file
 * Shutdown latch implementation.
 */

#include "util/shutdown.hpp"

#include <csignal>

namespace ising::util {

namespace {

volatile std::sig_atomic_t g_requested = 0;
bool g_installed = false;

extern "C" void
onShutdownSignal(int)
{
    g_requested = 1;
}

} // namespace

void
installShutdownHandler()
{
    if (g_installed)
        return;
    g_installed = true;
    struct sigaction action = {};
    action.sa_handler = onShutdownSignal;
    sigemptyset(&action.sa_mask);
    // No SA_RESTART: blocked syscalls (epoll_wait, accept, nanosleep)
    // return EINTR so the serving loop sees the flag promptly.
    action.sa_flags = 0;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

bool
shutdownRequested()
{
    return g_requested != 0;
}

void
clearShutdownRequest()
{
    g_requested = 0;
}

} // namespace ising::util
