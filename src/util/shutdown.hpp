/**
 * @file
 * Cooperative SIGINT/SIGTERM shutdown latch.
 *
 * Long-running serving processes (`isingrbm serve`, `serve-loop`) must
 * not die mid-write under Ctrl-C: the handler only sets a flag, and
 * the serving loops poll it to stop accepting, drain in-flight work,
 * reply to queued requests, and exit 0.  The handler is installed
 * without SA_RESTART so a blocking epoll_wait/accept returns EINTR
 * immediately and the loop notices the flag on its next iteration.
 */

#ifndef ISINGRBM_UTIL_SHUTDOWN_HPP
#define ISINGRBM_UTIL_SHUTDOWN_HPP

namespace ising::util {

/** Install the SIGINT/SIGTERM flag-setting handler (idempotent). */
void installShutdownHandler();

/** True once SIGINT or SIGTERM has been delivered. */
bool shutdownRequested();

/** Rearm for another run (tests). */
void clearShutdownRequest();

} // namespace ising::util

#endif // ISINGRBM_UTIL_SHUTDOWN_HPP
