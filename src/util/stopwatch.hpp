/**
 * @file
 * Wall-clock stopwatch for coarse benchmarking inside examples and
 * integration tests (google-benchmark handles the fine-grained timing).
 */

#ifndef ISINGRBM_UTIL_STOPWATCH_HPP
#define ISINGRBM_UTIL_STOPWATCH_HPP

#include <chrono>

namespace ising::util {

/** Monotonic stopwatch measuring elapsed seconds. */
class Stopwatch
{
  public:
    Stopwatch() { reset(); }

    /** Restart the measurement window. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        const auto d = Clock::now() - start_;
        return std::chrono::duration<double>(d).count();
    }

    /** Milliseconds elapsed. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace ising::util

#endif // ISINGRBM_UTIL_STOPWATCH_HPP
