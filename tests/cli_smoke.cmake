# CLI smoke stage (registered as the cli_smoke ctest by CMakeLists):
# exercise isingrbm train -> list --verify -> sample -> eval on a tiny
# registry config, failing on any non-zero exit.  The list --verify
# step re-serializes every checkpoint and diffs the round-trip.
#
#   cmake -DCLI=<isingrbm binary> -DWORK=<scratch dir> -P cli_smoke.cmake

if(NOT DEFINED CLI OR NOT DEFINED WORK)
  message(FATAL_ERROR "cli_smoke: pass -DCLI=<binary> -DWORK=<dir>")
endif()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run_step)
  execute_process(COMMAND ${ARGV}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  string(JOIN " " pretty ${ARGV})
  message(STATUS "cli_smoke: ${pretty}")
  if(out)
    message(STATUS "${out}")
  endif()
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "cli_smoke: '${pretty}' failed (${code}): ${err}")
  endif()
endfunction()

# Tiny but real: 120 synthetic MNIST-stand-in glyphs, a 12-hidden RBM,
# one CD epoch -- seconds of work, every layer exercised.
run_step(${CLI} train --registry ${WORK} --name smoke
         --data MNIST --samples 120 --hidden 12 --trainer cd
         --epochs 1 --k 1)
run_step(${CLI} train --registry ${WORK} --name smoke-dbn
         --data MNIST --samples 120 --family dbn --layers 12,8
         --trainer cd --epochs 1 --k 1)

# Train -> interrupt -> resume across all six families: a short run
# checkpoints, then --resume extends it.  The rbm leg also exercises
# --pcd (persistent chains through the train-state section),
# --checkpoint-every and the --monitor-out CSV.
run_step(${CLI} train --registry ${WORK} --name res-rbm
         --samples 120 --hidden 10 --epochs 2 --k 1 --pcd
         --checkpoint-every 1 --monitor-out ${WORK}/monitor.csv)
if(NOT EXISTS ${WORK}/monitor.csv)
  message(FATAL_ERROR "cli_smoke: --monitor-out wrote nothing")
endif()
run_step(${CLI} train --registry ${WORK} --name res-rbm --resume
         --samples 120 --epochs 3 --k 1 --pcd)
run_step(${CLI} train --registry ${WORK} --name res-class
         --family class_rbm --samples 120 --hidden 10 --epochs 1 --k 1)
run_step(${CLI} train --registry ${WORK} --name res-class --resume
         --samples 120 --epochs 2 --k 1)
run_step(${CLI} train --registry ${WORK} --name res-cf
         --family cf_rbm --users 30 --items 20 --hidden 8 --epochs 2)
run_step(${CLI} train --registry ${WORK} --name res-cf --resume
         --users 30 --items 20 --epochs 3)
run_step(${CLI} train --registry ${WORK} --name res-conv
         --family conv_rbm --samples 40 --filters 2 --filter-side 5
         --pool-grid 2 --epochs 1)
run_step(${CLI} train --registry ${WORK} --name res-conv --resume
         --samples 40 --epochs 2)
# DBN epochs are per layer and pinned by the archive (changing them
# would remap epochs onto the wrong layers), so the resume repeats the
# original --epochs; mid-stack resume is covered by test_train_session.
run_step(${CLI} train --registry ${WORK} --name res-dbn
         --family dbn --layers 10,6 --samples 120 --epochs 1 --k 1)
run_step(${CLI} train --registry ${WORK} --name res-dbn --resume
         --samples 120 --epochs 1 --k 1)
run_step(${CLI} train --registry ${WORK} --name res-dbm
         --family dbm --layers 10,6 --samples 80 --epochs 1
         --pretrain-epochs 1)
run_step(${CLI} train --registry ${WORK} --name res-dbm --resume
         --samples 80 --epochs 2 --pretrain-epochs 1)

# Checkpoint round-trip diff over everything just written -- including
# the archives that now carry train-state sections.
run_step(${CLI} list --registry ${WORK} --verify)

run_step(${CLI} sample --registry ${WORK} --model smoke
         --count 2 --burnin 5 --out ${WORK}/samples.txt)
if(NOT EXISTS ${WORK}/samples.txt)
  message(FATAL_ERROR "cli_smoke: sample --out wrote nothing")
endif()

# Sparse-dispatch determinism canary: the same sample request with the
# sparse path forced off (threshold 0) and forced on (threshold 1)
# must emit byte-identical samples -- the bit-reproducibility contract
# the dispatcher rides on.  A diff here means the sparse kernels
# drifted from the dense ones.
run_step(${CLI} sample --registry ${WORK} --model smoke
         --count 2 --burnin 5 --seed 99 --sparse-threshold 0
         --out ${WORK}/samples-dense.txt)
run_step(${CLI} sample --registry ${WORK} --model smoke
         --count 2 --burnin 5 --seed 99 --sparse-threshold 1
         --out ${WORK}/samples-sparse.txt)
file(READ ${WORK}/samples-dense.txt dense_bits)
file(READ ${WORK}/samples-sparse.txt sparse_bits)
if(NOT dense_bits STREQUAL sparse_bits)
  message(FATAL_ERROR "cli_smoke: sparse path produced different "
                      "samples than the dense path (determinism "
                      "contract broken)")
endif()

# SIMD-tier determinism canary: the same train + sample run with the
# kernel tier forced to generic and with auto dispatch (AVX2/AVX-512
# where the host has it) must be byte-identical end to end -- the
# tiers move time, never results.  The scalar float pipeline rides the
# same contract, so a third sampling leg pins --isa scalar against the
# auto-dispatched model.
run_step(${CLI} train --registry ${WORK} --name smoke-isa-auto
         --samples 120 --hidden 12 --epochs 1 --k 1 --isa auto)
run_step(${CLI} train --registry ${WORK} --name smoke-isa-generic
         --samples 120 --hidden 12 --epochs 1 --k 1 --isa generic)
run_step(${CLI} sample --registry ${WORK} --model smoke-isa-auto
         --count 2 --burnin 5 --seed 99 --isa auto
         --out ${WORK}/samples-isa-auto.txt)
run_step(${CLI} sample --registry ${WORK} --model smoke-isa-generic
         --count 2 --burnin 5 --seed 99 --isa generic
         --out ${WORK}/samples-isa-generic.txt)
run_step(${CLI} sample --registry ${WORK} --model smoke-isa-auto
         --count 2 --burnin 5 --seed 99 --isa scalar
         --out ${WORK}/samples-isa-scalar.txt)
file(READ ${WORK}/samples-isa-auto.txt isa_auto_bits)
file(READ ${WORK}/samples-isa-generic.txt isa_generic_bits)
file(READ ${WORK}/samples-isa-scalar.txt isa_scalar_bits)
if(NOT isa_auto_bits STREQUAL isa_generic_bits)
  message(FATAL_ERROR "cli_smoke: forced-generic train+sample differs "
                      "from auto-dispatched SIMD tier (bit-identity "
                      "contract broken)")
endif()
if(NOT isa_auto_bits STREQUAL isa_scalar_bits)
  message(FATAL_ERROR "cli_smoke: scalar float pipeline differs from "
                      "the packed SIMD tiers (bit-identity contract "
                      "broken)")
endif()

# --early-stop plumbing: the flag trains with a monitor attached and
# must at minimum complete and checkpoint (whether it triggers depends
# on the gap trajectory).
run_step(${CLI} train --registry ${WORK} --name smoke-es
         --samples 120 --hidden 10 --epochs 2 --k 1 --early-stop 1)

run_step(${CLI} eval --registry ${WORK} --model smoke
         --data MNIST --samples 120 --head-epochs 5)

# ---------------------------------------------------------------------
# Fault-tolerance legs: the robustness layer under real process
# boundaries, driven by the ISINGRBM_FAULTS environment DSL.

# Variant of run_step for steps that are *supposed* to exit non-zero
# (rolled-back promotes exit 2, rejected candidates exit 1).
function(run_step_expect expected)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  string(JOIN " " pretty ${ARGN})
  message(STATUS "cli_smoke (expect exit ${expected}): ${pretty}")
  if(out)
    message(STATUS "${out}")
  endif()
  if(NOT code EQUAL expected)
    message(FATAL_ERROR "cli_smoke: '${pretty}' exited ${code}, "
                        "expected ${expected}: ${err}")
  endif()
endfunction()

# Transient-write retry: the first write of the archive fails
# (injected), and the session's save retry must still land the run.
run_step(${CMAKE_COMMAND} -E env ISINGRBM_FAULTS=failwrite:retry-smoke@1
         ${CLI} train --registry ${WORK} --name retry-smoke
         --samples 120 --hidden 10 --epochs 1 --k 1)
run_step(${CLI} list --registry ${WORK} --verify)

# Continuous training under torn writes: a trainer publishes four
# per-epoch checkpoints of 'live' with the epoch-2 publish truncated
# mid-archive (a simulated torn write), while a concurrently running
# serve-loop probes the same registry with a fixed seeded request.
# The serve-loop must never die, must never serve the torn archive
# (the trailer checksum rejects it and the registry degrades to the
# epoch-1 model), and must eventually observe epoch 4.  The two
# COMMANDs below run concurrently (execute_process pipelines them);
# the trainer is upstream so the serve-loop is the last reader
# standing.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env ISINGRBM_FAULTS=truncate:live.ckpt=200@2
          ${CLI} train --registry ${WORK}/live-reg --name live
          --samples 120 --hidden 10 --epochs 4 --k 1
          --checkpoint-every 1 --epoch-sleep-ms 120
  COMMAND ${CLI} serve-loop --registry ${WORK}/live-reg --model live
          --passes 400 --interval-ms 15 --rows 4 --seed 7
          --until-epoch 4 --out-dir ${WORK}/live-A
  RESULTS_VARIABLE live_codes
  OUTPUT_VARIABLE live_out
  ERROR_VARIABLE live_err)
message(STATUS "cli_smoke: concurrent torn-write train + serve-loop")
if(live_out)
  message(STATUS "${live_out}")
endif()
foreach(code IN LISTS live_codes)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "cli_smoke: concurrent train/serve-loop leg "
                        "failed (exit codes: ${live_codes}): "
                        "${live_err}")
  endif()
endforeach()

# Bit-identity across the churn: the same request against the settled
# registry must produce the same bytes the live run recorded for
# epoch 4.  Hot-swapping moves *when* a model serves, never what bits
# a request produces.
run_step(${CLI} serve-loop --registry ${WORK}/live-reg --model live
         --passes 3 --interval-ms 5 --rows 4 --seed 7
         --out-dir ${WORK}/live-B)
run_step(${CMAKE_COMMAND} -E compare_files
         ${WORK}/live-A/epoch-4.txt ${WORK}/live-B/epoch-4.txt)

# Hot-swap promote with a mid-stream swap: candidate archives at epoch
# 1 and epoch 2, a first promote with no incumbent (canary skipped),
# then a serve-loop watching 'hot' while a delayed concurrent promote
# swaps the epoch-2 candidate in underneath it.
run_step(${CLI} train --registry ${WORK}/cands --name cand-a
         --samples 120 --hidden 10 --epochs 1 --k 1)
run_step(${CLI} train --registry ${WORK}/cands --name cand-b
         --samples 120 --hidden 10 --epochs 2 --k 1)
run_step(${CLI} promote --registry ${WORK}/prom-reg --name hot
         --candidate ${WORK}/cands/cand-a.ckpt)
execute_process(
  COMMAND ${CMAKE_COMMAND} -DCLI=${CLI} -DDELAY=1
          -DREGISTRY=${WORK}/prom-reg -DNAME=hot
          -DCANDIDATE=${WORK}/cands/cand-b.ckpt -DTOLERANCE=1000
          -P ${CMAKE_CURRENT_LIST_DIR}/cli_smoke_promote.cmake
  COMMAND ${CLI} serve-loop --registry ${WORK}/prom-reg --model hot
          --passes 400 --interval-ms 10 --rows 4 --seed 7
          --until-epoch 2 --out-dir ${WORK}/prom-A
  RESULTS_VARIABLE prom_codes
  OUTPUT_VARIABLE prom_out
  ERROR_VARIABLE prom_err)
message(STATUS "cli_smoke: mid-stream promote under a live serve-loop")
if(prom_out)
  message(STATUS "${prom_out}")
endif()
foreach(code IN LISTS prom_codes)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "cli_smoke: mid-stream promote leg failed "
                        "(exit codes: ${prom_codes}): ${prom_err}")
  endif()
endforeach()
run_step(${CLI} serve-loop --registry ${WORK}/prom-reg --model hot
         --passes 3 --interval-ms 5 --rows 4 --seed 7
         --out-dir ${WORK}/prom-B)
run_step(${CMAKE_COMMAND} -E compare_files
         ${WORK}/prom-A/epoch-2.txt ${WORK}/prom-B/epoch-2.txt)

# Canary rollback under a live serve-loop: a negative tolerance makes
# the gate unpassable, so the mid-stream promote must refuse to ship
# (exit 2) while the serve-loop keeps serving cand-b undisturbed.
execute_process(
  COMMAND ${CMAKE_COMMAND} -DCLI=${CLI} -DDELAY=0.2 -DEXPECT=2
          -DREGISTRY=${WORK}/prom-reg -DNAME=hot
          -DCANDIDATE=${WORK}/cands/cand-a.ckpt -DTOLERANCE=-1
          -P ${CMAKE_CURRENT_LIST_DIR}/cli_smoke_promote.cmake
  COMMAND ${CLI} serve-loop --registry ${WORK}/prom-reg --model hot
          --passes 60 --interval-ms 10 --rows 4 --seed 7
          --out-dir ${WORK}/prom-roll
  RESULTS_VARIABLE roll_codes
  OUTPUT_VARIABLE roll_out
  ERROR_VARIABLE roll_err)
message(STATUS "cli_smoke: mid-stream canary rollback")
if(roll_out)
  message(STATUS "${roll_out}")
endif()
foreach(code IN LISTS roll_codes)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "cli_smoke: mid-stream rollback leg failed "
                        "(exit codes: ${roll_codes}): ${roll_err}")
  endif()
endforeach()
run_step(${CMAKE_COMMAND} -E compare_files
         ${WORK}/prom-A/epoch-2.txt ${WORK}/prom-roll/epoch-2.txt)

# A torn candidate is rejected outright (exit 1) and never published.
file(READ ${WORK}/cands/cand-a.ckpt torn_head LIMIT 150)
file(WRITE ${WORK}/cands/torn.ckpt "${torn_head}")
run_step_expect(1 ${CLI} promote --registry ${WORK}/prom-reg --name hot
                --candidate ${WORK}/cands/torn.ckpt)

# After the rollback and the rejected candidate, 'hot' still serves
# the promoted epoch-2 model bit-for-bit.
run_step(${CLI} serve-loop --registry ${WORK}/prom-reg --model hot
         --passes 3 --interval-ms 5 --rows 4 --seed 7
         --out-dir ${WORK}/prom-C)
run_step(${CMAKE_COMMAND} -E compare_files
         ${WORK}/prom-B/epoch-2.txt ${WORK}/prom-C/epoch-2.txt)

# ---------------------------------------------------------------------
# Serving-cache legs: serve-bench replays the same deterministic
# workload twice in one process, so with a cache budget every rep-2
# request must hit; and the dumped response bytes must be identical
# across cache on/off x packed/legacy gather (4-way byte-diff canary --
# the cache and the packed plane move time, never bits).
execute_process(COMMAND ${CLI} serve-bench --registry ${WORK}
                --model smoke --op reconstruct --requests 16 --rows 4
                --reps 2 --cache-bytes 8000000
                --out ${WORK}/serve-cache-packed.txt
                RESULT_VARIABLE code
                OUTPUT_VARIABLE cache_out
                ERROR_VARIABLE cache_err)
message(STATUS "cli_smoke: serve-bench cached rep-2 run")
message(STATUS "${cache_out}")
if(NOT code EQUAL 0)
  message(FATAL_ERROR "cli_smoke: cached serve-bench failed (${code}): "
                      "${cache_err}")
endif()
if(NOT cache_out MATCHES "cache: 16 hits")
  message(FATAL_ERROR "cli_smoke: rep 2 of a deterministic workload "
                      "did not fully hit the response cache")
endif()
run_step(${CLI} serve-bench --registry ${WORK} --model smoke
         --op reconstruct --requests 16 --rows 4 --reps 2
         --out ${WORK}/serve-nocache-packed.txt)
run_step(${CLI} serve-bench --registry ${WORK} --model smoke
         --op reconstruct --requests 16 --rows 4 --reps 2
         --legacy-gather --out ${WORK}/serve-nocache-legacy.txt)
run_step(${CLI} serve-bench --registry ${WORK} --model smoke
         --op reconstruct --requests 16 --rows 4 --reps 2
         --cache-bytes 8000000 --legacy-gather
         --out ${WORK}/serve-cache-legacy.txt)
run_step(${CMAKE_COMMAND} -E compare_files
         ${WORK}/serve-cache-packed.txt
         ${WORK}/serve-nocache-packed.txt)
run_step(${CMAKE_COMMAND} -E compare_files
         ${WORK}/serve-cache-packed.txt
         ${WORK}/serve-nocache-legacy.txt)
run_step(${CMAKE_COMMAND} -E compare_files
         ${WORK}/serve-cache-packed.txt
         ${WORK}/serve-cache-legacy.txt)

# ---------------------------------------------------------------------
# Networked serving legs: a real serve process on an ephemeral port, a
# seeded loadgen hammering it over 3 connections, and a byte-diff of
# the socket-served responses against the in-process serve-bench dump
# of the identical corpus.  The loadgen's --shutdown frame is what
# stops the server, so both exit codes prove the graceful-drain path.
execute_process(
  COMMAND ${CLI} serve --registry ${WORK} --port 0
          --port-file ${WORK}/net.port --cache-bytes 1048576
  COMMAND ${CLI} loadgen --port-file ${WORK}/net.port --model smoke
          --op reconstruct --requests 16 --rows 4 --steps 10 --seed 13
          --connections 3 --out ${WORK}/net-served.txt --shutdown
  TIMEOUT 120
  RESULTS_VARIABLE net_codes
  OUTPUT_VARIABLE net_out
  ERROR_VARIABLE net_err)
message(STATUS "cli_smoke: serve + loadgen over the socket")
if(net_out)
  message(STATUS "${net_out}")
endif()
foreach(code IN LISTS net_codes)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "cli_smoke: serve/loadgen leg failed "
                        "(exit codes: ${net_codes}): ${net_err}")
  endif()
endforeach()
run_step(${CLI} serve-bench --registry ${WORK} --model smoke
         --op reconstruct --requests 16 --rows 4 --steps 10 --seed 13
         --reps 1 --out ${WORK}/net-inproc.txt)
run_step(${CMAKE_COMMAND} -E compare_files
         ${WORK}/net-served.txt ${WORK}/net-inproc.txt)

# Overload: a tiny admission budget against a saturating pipelined
# burst must shed with OVERLOADED replies -- not drop frames, not kill
# connections, not fail the client -- and still drain to exit 0.
execute_process(
  COMMAND ${CLI} serve --registry ${WORK} --port 0
          --port-file ${WORK}/net-over.port --max-pending-rows 8
  COMMAND ${CLI} loadgen --port-file ${WORK}/net-over.port
          --model smoke --op reconstruct --requests 64 --rows 4
          --steps 10 --seed 13 --connections 2 --shutdown
  TIMEOUT 120
  RESULTS_VARIABLE over_codes
  OUTPUT_VARIABLE over_out
  ERROR_VARIABLE over_err)
message(STATUS "cli_smoke: overloaded serve (admission budget 8 rows)")
if(over_out)
  message(STATUS "${over_out}")
endif()
foreach(code IN LISTS over_codes)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "cli_smoke: overload leg failed "
                        "(exit codes: ${over_codes}): ${over_err}")
  endif()
endforeach()
if(NOT over_out MATCHES "[1-9][0-9]* shed")
  message(FATAL_ERROR "cli_smoke: 64 pipelined requests against an "
                      "8-row budget shed nothing -- admission control "
                      "is not engaging")
endif()
if(NOT over_out MATCHES " 0 failed")
  message(FATAL_ERROR "cli_smoke: overload leg dropped or corrupted "
                      "frames (non-zero failed count)")
endif()
