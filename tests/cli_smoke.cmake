# CLI smoke stage (registered as the cli_smoke ctest by CMakeLists):
# exercise isingrbm train -> list --verify -> sample -> eval on a tiny
# registry config, failing on any non-zero exit.  The list --verify
# step re-serializes every checkpoint and diffs the round-trip.
#
#   cmake -DCLI=<isingrbm binary> -DWORK=<scratch dir> -P cli_smoke.cmake

if(NOT DEFINED CLI OR NOT DEFINED WORK)
  message(FATAL_ERROR "cli_smoke: pass -DCLI=<binary> -DWORK=<dir>")
endif()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run_step)
  execute_process(COMMAND ${ARGV}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  string(JOIN " " pretty ${ARGV})
  message(STATUS "cli_smoke: ${pretty}")
  if(out)
    message(STATUS "${out}")
  endif()
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "cli_smoke: '${pretty}' failed (${code}): ${err}")
  endif()
endfunction()

# Tiny but real: 120 synthetic MNIST-stand-in glyphs, a 12-hidden RBM,
# one CD epoch -- seconds of work, every layer exercised.
run_step(${CLI} train --registry ${WORK} --name smoke
         --data MNIST --samples 120 --hidden 12 --trainer cd
         --epochs 1 --k 1)
run_step(${CLI} train --registry ${WORK} --name smoke-dbn
         --data MNIST --samples 120 --family dbn --layers 12,8
         --trainer cd --epochs 1 --k 1)

# Train -> interrupt -> resume across all six families: a short run
# checkpoints, then --resume extends it.  The rbm leg also exercises
# --pcd (persistent chains through the train-state section),
# --checkpoint-every and the --monitor-out CSV.
run_step(${CLI} train --registry ${WORK} --name res-rbm
         --samples 120 --hidden 10 --epochs 2 --k 1 --pcd
         --checkpoint-every 1 --monitor-out ${WORK}/monitor.csv)
if(NOT EXISTS ${WORK}/monitor.csv)
  message(FATAL_ERROR "cli_smoke: --monitor-out wrote nothing")
endif()
run_step(${CLI} train --registry ${WORK} --name res-rbm --resume
         --samples 120 --epochs 3 --k 1 --pcd)
run_step(${CLI} train --registry ${WORK} --name res-class
         --family class_rbm --samples 120 --hidden 10 --epochs 1 --k 1)
run_step(${CLI} train --registry ${WORK} --name res-class --resume
         --samples 120 --epochs 2 --k 1)
run_step(${CLI} train --registry ${WORK} --name res-cf
         --family cf_rbm --users 30 --items 20 --hidden 8 --epochs 2)
run_step(${CLI} train --registry ${WORK} --name res-cf --resume
         --users 30 --items 20 --epochs 3)
run_step(${CLI} train --registry ${WORK} --name res-conv
         --family conv_rbm --samples 40 --filters 2 --filter-side 5
         --pool-grid 2 --epochs 1)
run_step(${CLI} train --registry ${WORK} --name res-conv --resume
         --samples 40 --epochs 2)
# DBN epochs are per layer and pinned by the archive (changing them
# would remap epochs onto the wrong layers), so the resume repeats the
# original --epochs; mid-stack resume is covered by test_train_session.
run_step(${CLI} train --registry ${WORK} --name res-dbn
         --family dbn --layers 10,6 --samples 120 --epochs 1 --k 1)
run_step(${CLI} train --registry ${WORK} --name res-dbn --resume
         --samples 120 --epochs 1 --k 1)
run_step(${CLI} train --registry ${WORK} --name res-dbm
         --family dbm --layers 10,6 --samples 80 --epochs 1
         --pretrain-epochs 1)
run_step(${CLI} train --registry ${WORK} --name res-dbm --resume
         --samples 80 --epochs 2 --pretrain-epochs 1)

# Checkpoint round-trip diff over everything just written -- including
# the archives that now carry train-state sections.
run_step(${CLI} list --registry ${WORK} --verify)

run_step(${CLI} sample --registry ${WORK} --model smoke
         --count 2 --burnin 5 --out ${WORK}/samples.txt)
if(NOT EXISTS ${WORK}/samples.txt)
  message(FATAL_ERROR "cli_smoke: sample --out wrote nothing")
endif()

# Sparse-dispatch determinism canary: the same sample request with the
# sparse path forced off (threshold 0) and forced on (threshold 1)
# must emit byte-identical samples -- the bit-reproducibility contract
# the dispatcher rides on.  A diff here means the sparse kernels
# drifted from the dense ones.
run_step(${CLI} sample --registry ${WORK} --model smoke
         --count 2 --burnin 5 --seed 99 --sparse-threshold 0
         --out ${WORK}/samples-dense.txt)
run_step(${CLI} sample --registry ${WORK} --model smoke
         --count 2 --burnin 5 --seed 99 --sparse-threshold 1
         --out ${WORK}/samples-sparse.txt)
file(READ ${WORK}/samples-dense.txt dense_bits)
file(READ ${WORK}/samples-sparse.txt sparse_bits)
if(NOT dense_bits STREQUAL sparse_bits)
  message(FATAL_ERROR "cli_smoke: sparse path produced different "
                      "samples than the dense path (determinism "
                      "contract broken)")
endif()

# SIMD-tier determinism canary: the same train + sample run with the
# kernel tier forced to generic and with auto dispatch (AVX2/AVX-512
# where the host has it) must be byte-identical end to end -- the
# tiers move time, never results.  The scalar float pipeline rides the
# same contract, so a third sampling leg pins --isa scalar against the
# auto-dispatched model.
run_step(${CLI} train --registry ${WORK} --name smoke-isa-auto
         --samples 120 --hidden 12 --epochs 1 --k 1 --isa auto)
run_step(${CLI} train --registry ${WORK} --name smoke-isa-generic
         --samples 120 --hidden 12 --epochs 1 --k 1 --isa generic)
run_step(${CLI} sample --registry ${WORK} --model smoke-isa-auto
         --count 2 --burnin 5 --seed 99 --isa auto
         --out ${WORK}/samples-isa-auto.txt)
run_step(${CLI} sample --registry ${WORK} --model smoke-isa-generic
         --count 2 --burnin 5 --seed 99 --isa generic
         --out ${WORK}/samples-isa-generic.txt)
run_step(${CLI} sample --registry ${WORK} --model smoke-isa-auto
         --count 2 --burnin 5 --seed 99 --isa scalar
         --out ${WORK}/samples-isa-scalar.txt)
file(READ ${WORK}/samples-isa-auto.txt isa_auto_bits)
file(READ ${WORK}/samples-isa-generic.txt isa_generic_bits)
file(READ ${WORK}/samples-isa-scalar.txt isa_scalar_bits)
if(NOT isa_auto_bits STREQUAL isa_generic_bits)
  message(FATAL_ERROR "cli_smoke: forced-generic train+sample differs "
                      "from auto-dispatched SIMD tier (bit-identity "
                      "contract broken)")
endif()
if(NOT isa_auto_bits STREQUAL isa_scalar_bits)
  message(FATAL_ERROR "cli_smoke: scalar float pipeline differs from "
                      "the packed SIMD tiers (bit-identity contract "
                      "broken)")
endif()

# --early-stop plumbing: the flag trains with a monitor attached and
# must at minimum complete and checkpoint (whether it triggers depends
# on the gap trajectory).
run_step(${CLI} train --registry ${WORK} --name smoke-es
         --samples 120 --hidden 10 --epochs 2 --k 1 --early-stop 1)

run_step(${CLI} eval --registry ${WORK} --model smoke
         --data MNIST --samples 120 --head-epochs 5)
