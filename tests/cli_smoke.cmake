# CLI smoke stage (registered as the cli_smoke ctest by CMakeLists):
# exercise isingrbm train -> list --verify -> sample -> eval on a tiny
# registry config, failing on any non-zero exit.  The list --verify
# step re-serializes every checkpoint and diffs the round-trip.
#
#   cmake -DCLI=<isingrbm binary> -DWORK=<scratch dir> -P cli_smoke.cmake

if(NOT DEFINED CLI OR NOT DEFINED WORK)
  message(FATAL_ERROR "cli_smoke: pass -DCLI=<binary> -DWORK=<dir>")
endif()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run_step)
  execute_process(COMMAND ${ARGV}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  string(JOIN " " pretty ${ARGV})
  message(STATUS "cli_smoke: ${pretty}")
  if(out)
    message(STATUS "${out}")
  endif()
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "cli_smoke: '${pretty}' failed (${code}): ${err}")
  endif()
endfunction()

# Tiny but real: 120 synthetic MNIST-stand-in glyphs, a 12-hidden RBM,
# one CD epoch -- seconds of work, every layer exercised.
run_step(${CLI} train --registry ${WORK} --name smoke
         --data MNIST --samples 120 --hidden 12 --trainer cd
         --epochs 1 --k 1)
run_step(${CLI} train --registry ${WORK} --name smoke-dbn
         --data MNIST --samples 120 --family dbn --layers 12,8
         --trainer cd --epochs 1 --k 1)

# Checkpoint round-trip diff over everything just written.
run_step(${CLI} list --registry ${WORK} --verify)

run_step(${CLI} sample --registry ${WORK} --model smoke
         --count 2 --burnin 5 --out ${WORK}/samples.txt)
if(NOT EXISTS ${WORK}/samples.txt)
  message(FATAL_ERROR "cli_smoke: sample --out wrote nothing")
endif()

run_step(${CLI} eval --registry ${WORK} --model smoke
         --data MNIST --samples 120 --head-epochs 5)
