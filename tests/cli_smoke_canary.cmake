# Live-canary chaos stage (registered as the cli_smoke_canary ctest):
# a real serve process routes live loadgen traffic into shadow
# execution against a staged candidate, auto-promotes through the gate,
# and is byte-diffed against a canary-off run -- then the same pipeline
# survives a torn candidate and an injected mid-reply connection drop.
#
#   cmake -DCLI=<isingrbm binary> -DWORK=<scratch dir>
#         -P cli_smoke_canary.cmake
#
# Every canary-on response must be byte-identical to the canary-off
# baseline: shadow execution moves time and gate counters, never a
# client-visible bit.  The candidate is a byte-copy of the incumbent,
# so the identity also holds *across* the auto-promote.
#
# The file doubles as its own concurrent helper: -DMODE=live-driver
# re-enters it as the downstream COMMAND of an execute_process pipeline
# beside a live serve process (traffic -> promote --live -> shutdown).
# Helper output goes through captured execute_process variables and
# message() (stderr), never bare stdout -- the pipeline's downstream
# reader may already have exited, and a write to its closed stdin would
# kill the script with SIGPIPE.

if(NOT DEFINED CLI OR NOT DEFINED WORK)
  message(FATAL_ERROR "cli_smoke_canary: pass -DCLI=<binary> -DWORK=<dir>")
endif()

function(run_leg outvar)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  string(JOIN " " pretty ${ARGN})
  message(STATUS "cli_smoke_canary: ${pretty}")
  if(out)
    message(STATUS "${out}")
  endif()
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "cli_smoke_canary: '${pretty}' failed "
                        "(${code}): ${err}")
  endif()
  set(${outvar} "${out}" PARENT_SCOPE)
endfunction()

# ---------------------------------------------------------------------
# live-driver mode: runs beside `serve --canary` in the pipeline leg.
if(DEFINED MODE AND MODE STREQUAL "live-driver")
  # Enough traffic at fraction 1.0 to clear --canary-min-shadows 4 and
  # trip the auto-promote while requests are still arriving.
  run_leg(traffic_out ${CLI} loadgen --port-file ${WORK}/live.port
          --model live --op reconstruct --requests 16 --rows 4
          --steps 10 --seed 13 --connections 2 --deadline-ms 5000
          --out ${WORK}/live-on.txt)
  # The gate has decided by now; promote --live translates its verdict
  # to the offline promote exit contract (0 = shipped).
  run_leg(live_out ${CLI} promote --live --port-file ${WORK}/live.port
          --poll-ms 50 --timeout-sec 30)
  if(NOT live_out MATCHES "promoted")
    message(FATAL_ERROR "cli_smoke_canary: promote --live saw no "
                        "promotion: ${live_out}")
  endif()
  # Post-promote traffic plus the shutdown frame that drains the server.
  run_leg(post_out ${CLI} loadgen --port-file ${WORK}/live.port
          --model live --op reconstruct --requests 16 --rows 4
          --steps 10 --seed 13 --connections 2
          --out ${WORK}/live-post.txt --shutdown)
  return()
endif()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

# Variant of the pipeline runner: two concurrent COMMANDs, both must
# exit 0; stderr (serve ledger, warnings) is surfaced on failure.
function(run_pipeline label)
  cmake_parse_arguments(PIPE "" "" "SERVE;DRIVE" ${ARGN})
  execute_process(COMMAND ${PIPE_SERVE}
                  COMMAND ${PIPE_DRIVE}
                  TIMEOUT 120
                  RESULTS_VARIABLE codes
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  message(STATUS "cli_smoke_canary: ${label}")
  if(out)
    message(STATUS "${out}")
  endif()
  foreach(code IN LISTS codes)
    if(NOT code EQUAL 0)
      message(FATAL_ERROR "cli_smoke_canary: ${label} failed "
                          "(exit codes: ${codes}): ${err}")
    endif()
  endforeach()
  set(pipeline_out "${out}" PARENT_SCOPE)
  set(pipeline_err "${err}" PARENT_SCOPE)
endfunction()

# One tiny incumbent, and a candidate that is its exact byte-copy --
# divergence is identically zero, so the gate promotes and the served
# bytes are invariant whichever archive is live.
run_leg(ignored ${CLI} train --registry ${WORK}/reg --name live
        --samples 120 --hidden 10 --epochs 1 --k 1)
run_leg(ignored ${CMAKE_COMMAND} -E copy ${WORK}/reg/live.ckpt
        ${WORK}/cand.ckpt)

# ---------------------------------------------------------------------
# Baseline: the identical corpus with the canary off.
run_pipeline("canary-off baseline"
  SERVE ${CLI} serve --registry ${WORK}/reg --port 0
        --port-file ${WORK}/off.port
  DRIVE ${CLI} loadgen --port-file ${WORK}/off.port --model live
        --op reconstruct --requests 16 --rows 4 --steps 10 --seed 13
        --connections 2 --out ${WORK}/live-off.txt --shutdown)

# ---------------------------------------------------------------------
# Live canary under traffic with deadlines: shadows accumulate, the
# gate auto-promotes after 4 clean shadows, promote --live watches the
# whole arc over Health frames, and the served bytes never move.  The
# generous --deadline-ms also proves a carried deadline does not
# perturb results (only late requests are answered differently).
run_pipeline("live canary + promote --live + deadlines"
  SERVE ${CLI} serve --registry ${WORK}/reg --port 0
        --port-file ${WORK}/live.port --canary ${WORK}/cand.ckpt
        --canary-fraction 1.0 --canary-min-shadows 4
        --stats-every-ms 25
  DRIVE ${CMAKE_COMMAND} -DCLI=${CLI} -DWORK=${WORK} -DMODE=live-driver
        -P ${CMAKE_CURRENT_LIST_DIR}/cli_smoke_canary.cmake)
run_leg(ignored ${CMAKE_COMMAND} -E compare_files
        ${WORK}/live-off.txt ${WORK}/live-on.txt)
run_leg(ignored ${CMAKE_COMMAND} -E compare_files
        ${WORK}/live-off.txt ${WORK}/live-post.txt)
if(NOT pipeline_err MATCHES "canary: promoted")
  message(FATAL_ERROR "cli_smoke_canary: serve never reported the "
                      "gate promoting: ${pipeline_err}")
endif()
if(NOT pipeline_err MATCHES "serve: [0-9.]+ req/s")
  message(FATAL_ERROR "cli_smoke_canary: --stats-every-ms emitted no "
                      "ledger line: ${pipeline_err}")
endif()

# ---------------------------------------------------------------------
# Torn candidate: serving must warn, refuse the stage, and keep serving
# the incumbent bit-for-bit with the gate idle.
file(READ ${WORK}/cand.ckpt torn_head LIMIT 200)
file(WRITE ${WORK}/torn.ckpt "${torn_head}")
run_pipeline("torn candidate is refused, incumbent serves"
  SERVE ${CLI} serve --registry ${WORK}/reg --port 0
        --port-file ${WORK}/torn.port --canary ${WORK}/torn.ckpt
        --canary-fraction 1.0 --canary-min-shadows 4
  DRIVE ${CLI} loadgen --port-file ${WORK}/torn.port --model live
        --op reconstruct --requests 16 --rows 4 --steps 10 --seed 13
        --connections 2 --out ${WORK}/live-torn.txt --shutdown)
run_leg(ignored ${CMAKE_COMMAND} -E compare_files
        ${WORK}/live-off.txt ${WORK}/live-torn.txt)
if(NOT pipeline_err MATCHES "canary stage failed")
  message(FATAL_ERROR "cli_smoke_canary: torn candidate staged "
                      "silently: ${pipeline_err}")
endif()

# ---------------------------------------------------------------------
# Injected mid-reply connection drop: the self-healing client must
# reconnect, resend, and record the same bytes -- zero failures.
# conn:1 is the loadgen's Info round trip; conn:2 is the first load
# connection, whose first reply gets chopped mid-frame.
run_pipeline("netdrop mid-reply, loadgen self-heals"
  SERVE ${CMAKE_COMMAND} -E env ISINGRBM_FAULTS=netdrop:conn:2@1
        ${CLI} serve --registry ${WORK}/reg --port 0
        --port-file ${WORK}/drop.port
  DRIVE ${CLI} loadgen --port-file ${WORK}/drop.port --model live
        --op reconstruct --requests 16 --rows 4 --steps 10 --seed 13
        --connections 2 --out ${WORK}/live-drop.txt --shutdown)
run_leg(ignored ${CMAKE_COMMAND} -E compare_files
        ${WORK}/live-off.txt ${WORK}/live-drop.txt)
if(NOT pipeline_out MATCHES "[1-9][0-9]* reconnects")
  message(FATAL_ERROR "cli_smoke_canary: injected netdrop produced no "
                      "reconnect -- the client did not self-heal: "
                      "${pipeline_out}")
endif()
if(NOT pipeline_out MATCHES " 0 failed")
  message(FATAL_ERROR "cli_smoke_canary: netdrop leg counted failures "
                      "instead of healing: ${pipeline_out}")
endif()

# ---------------------------------------------------------------------
# Tight deadlines under a saturating burst: late requests are answered
# DEADLINE_EXCEEDED (reported separately), never failed -- and the run
# still drains cleanly whether or not any budget actually expired.
run_pipeline("tight per-request deadlines"
  SERVE ${CLI} serve --registry ${WORK}/reg --port 0
        --port-file ${WORK}/dl.port
  DRIVE ${CLI} loadgen --port-file ${WORK}/dl.port --model live
        --op reconstruct --requests 64 --rows 4 --steps 10 --seed 13
        --connections 1 --deadline-ms 1 --shutdown)
if(NOT pipeline_out MATCHES " 0 failed")
  message(FATAL_ERROR "cli_smoke_canary: expired deadlines were "
                      "counted as failures: ${pipeline_out}")
endif()
