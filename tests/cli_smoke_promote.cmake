# Delayed-promote helper for the cli_smoke mid-stream hot-swap leg:
# sleep DELAY seconds, then run `isingrbm promote` and propagate its
# exit status.  Runs as one COMMAND of a concurrent execute_process
# pipeline next to a live serve-loop, so everything here writes to
# stderr only (plain message()) -- the pipeline's downstream reader may
# exit first, and a write to its closed stdin would kill this script
# with SIGPIPE.
#
#   cmake -DCLI=<binary> -DDELAY=<seconds> -DREGISTRY=<dir> -DNAME=<id>
#         -DCANDIDATE=<archive> -DTOLERANCE=<slack> [-DEXPECT=<code>]
#         -P cli_smoke_promote.cmake
#
# EXPECT (default 0) is the promote exit code this run requires: 0 for
# a gated swap, 2 for a canary rollback.

foreach(var CLI DELAY REGISTRY NAME CANDIDATE TOLERANCE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cli_smoke_promote: pass -D${var}=...")
  endif()
endforeach()
if(NOT DEFINED EXPECT)
  set(EXPECT 0)
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E sleep ${DELAY})
execute_process(COMMAND ${CLI} promote --registry ${REGISTRY}
                        --name ${NAME} --candidate ${CANDIDATE}
                        --tolerance ${TOLERANCE}
                RESULT_VARIABLE code
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
message("cli_smoke_promote: promote exited ${code}\n${out}")
if(NOT code EQUAL EXPECT)
  message(FATAL_ERROR "cli_smoke_promote: promote exited ${code}, "
                      "expected ${EXPECT}: ${err}")
endif()
