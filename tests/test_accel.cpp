/**
 * @file
 * Tests for the two accelerator architectures (GS and BGF).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/bgf.hpp"
#include "accel/gibbs_sampler.hpp"
#include "rbm/exact.hpp"

using namespace ising;
using util::Rng;

namespace {

data::Dataset
stripeData(std::size_t rows, std::size_t dim)
{
    data::Dataset ds;
    ds.samples.reset(rows, dim);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t i = 0; i < dim; ++i)
            ds.samples(r, i) = (r % 2 == i % 2) ? 1.0f : 0.0f;
    return ds;
}

machine::AnalogConfig
idealAnalog()
{
    machine::AnalogConfig cfg;
    cfg.idealComponents = true;
    return cfg;
}

} // namespace

TEST(GibbsSamplerAccel, ImprovesExactLikelihood)
{
    Rng rng(1);
    const auto ds = stripeData(40, 12);
    rbm::Rbm model(12, 5);
    model.initRandom(rng, 0.01f);
    const double before = rbm::exact::meanLogLikelihood(model, ds);

    accel::GsConfig cfg;
    cfg.learningRate = 0.2;
    cfg.k = 1;
    cfg.batchSize = 10;
    cfg.analog = idealAnalog();
    accel::GibbsSamplerAccel gs(model, cfg, rng);
    for (int epoch = 0; epoch < 60; ++epoch)
        gs.trainEpoch(ds);
    EXPECT_GT(rbm::exact::meanLogLikelihood(model, ds), before + 1.0);
}

TEST(GibbsSamplerAccel, LearnsThroughNonIdealCircuits)
{
    Rng rng(2);
    const auto ds = stripeData(40, 12);
    rbm::Rbm model(12, 5);
    model.initRandom(rng, 0.01f);
    const double before = rbm::exact::meanLogLikelihood(model, ds);

    accel::GsConfig cfg;
    cfg.learningRate = 0.2;
    cfg.batchSize = 10;
    // defaults: 8-bit converters, rail compression, comparator offsets
    accel::GibbsSamplerAccel gs(model, cfg, rng);
    for (int epoch = 0; epoch < 60; ++epoch)
        gs.trainEpoch(ds);
    EXPECT_GT(rbm::exact::meanLogLikelihood(model, ds), before + 0.8);
}

TEST(GibbsSamplerAccel, CountersTrackOperation)
{
    Rng rng(3);
    const auto ds = stripeData(20, 8);
    rbm::Rbm model(8, 4);
    model.initRandom(rng, 0.01f);
    accel::GsConfig cfg;
    cfg.k = 2;
    cfg.batchSize = 5;
    cfg.analog = idealAnalog();
    accel::GibbsSamplerAccel gs(model, cfg, rng);
    gs.trainEpoch(ds);
    const auto &c = gs.counters();
    EXPECT_EQ(c.samplesProcessed, 20u);
    EXPECT_EQ(c.reprograms, 4u);     // 20 / 5 batches
    EXPECT_EQ(c.hostUpdates, 4u);
    // Per sample: 1 positive sweep + 2k anneal half-sweeps.
    EXPECT_EQ(c.fabricSweeps, 20u * (1 + 2 * 2));
    EXPECT_GT(c.bitsToHost, 0u);
    EXPECT_GT(c.bitsToDevice, 0u);
}

TEST(Bgf, LearnsStripes)
{
    Rng rng(4);
    const auto ds = stripeData(60, 12);
    accel::BgfConfig cfg;
    cfg.learningRate = 0.02;  // minibatch-1 step
    cfg.annealSteps = 2;
    cfg.numParticles = 4;
    cfg.analog = idealAnalog();
    accel::BoltzmannGradientFollower bgf(12, 5, cfg, rng);
    rbm::Rbm init(12, 5);
    init.initRandom(rng, 0.01f);
    bgf.initialize(init);
    const double before =
        rbm::exact::meanLogLikelihood(bgf.readOut(), ds);
    for (int epoch = 0; epoch < 40; ++epoch)
        bgf.trainEpoch(ds);
    const double after = rbm::exact::meanLogLikelihood(bgf.readOut(), ds);
    EXPECT_GT(after, before + 1.0);
}

TEST(Bgf, LearnsThroughFullCircuitModel)
{
    Rng rng(5);
    const auto ds = stripeData(60, 12);
    accel::BgfConfig cfg;
    cfg.learningRate = 0.02;
    cfg.annealSteps = 2;
    // non-ideal defaults + mild noise
    cfg.analog.noise = {0.05, 0.05};
    accel::BoltzmannGradientFollower bgf(12, 5, cfg, rng);
    rbm::Rbm init(12, 5);
    init.initRandom(rng, 0.01f);
    bgf.initialize(init);
    const double before =
        rbm::exact::meanLogLikelihood(bgf.readOut(), ds);
    for (int epoch = 0; epoch < 40; ++epoch)
        bgf.trainEpoch(ds);
    EXPECT_GT(rbm::exact::meanLogLikelihood(bgf.readOut(), ds),
              before + 0.8);
}

TEST(Bgf, MidStepToggleChangesTrajectoryNotQuality)
{
    const auto ds = stripeData(60, 10);
    auto run = [&](bool midStep) {
        Rng rng(6);
        accel::BgfConfig cfg;
        cfg.learningRate = 0.02;
        cfg.annealSteps = 2;
        cfg.midStepUpdates = midStep;
        cfg.analog = idealAnalog();
        accel::BoltzmannGradientFollower bgf(10, 4, cfg, rng);
        rbm::Rbm init(10, 4);
        init.initRandom(rng, 0.01f);
        bgf.initialize(init);
        for (int epoch = 0; epoch < 30; ++epoch)
            bgf.trainEpoch(ds);
        return rbm::exact::meanLogLikelihood(bgf.readOut(), ds);
    };
    const double withMid = run(true);
    const double without = run(false);
    // Both learn; neither collapses (the Sec. 3.3 claim).
    EXPECT_GT(withMid, -6.0);
    EXPECT_GT(without, -6.0);
    EXPECT_NEAR(withMid, without, 1.5);
}

TEST(Bgf, CountersTrackPhases)
{
    Rng rng(7);
    const auto ds = stripeData(10, 8);
    accel::BgfConfig cfg;
    cfg.annealSteps = 3;
    cfg.analog = idealAnalog();
    accel::BoltzmannGradientFollower bgf(8, 4, cfg, rng);
    rbm::Rbm init(8, 4);
    bgf.initialize(init);
    bgf.trainEpoch(ds);
    const auto &c = bgf.counters();
    EXPECT_EQ(c.samplesProcessed, 10u);
    EXPECT_EQ(c.pumpPhases, 20u);  // one + / one - per sample
    EXPECT_EQ(c.fabricSweeps, 10u * (1 + 2 * 3));
}

TEST(Bgf, ReadOutQuantizedAtAdcResolution)
{
    Rng rng(8);
    accel::BgfConfig cfg;  // non-ideal: 8-bit ADC, weightMax 2.0
    accel::BoltzmannGradientFollower bgf(6, 4, cfg, rng);
    rbm::Rbm init(6, 4);
    Rng irng(9);
    init.initRandom(irng, 0.3f);
    bgf.initialize(init);
    const rbm::Rbm out = bgf.readOut();
    const double lsb = 2.0 * cfg.analog.weightMax / 255.0;
    for (std::size_t i = 0; i < out.weights().size(); ++i) {
        const double q = out.weights().data()[i] / lsb;
        EXPECT_NEAR(q, std::round(q), 1e-3) << i;
    }
}

TEST(Bgf, ParticleCountRespected)
{
    Rng rng(10);
    accel::BgfConfig cfg;
    cfg.numParticles = 3;
    cfg.analog = idealAnalog();
    accel::BoltzmannGradientFollower bgf(6, 4, cfg, rng);
    rbm::Rbm init(6, 4);
    bgf.initialize(init);
    EXPECT_EQ(bgf.config().numParticles, 3u);
    const auto ds = stripeData(9, 6);
    bgf.trainEpoch(ds);  // must not crash cycling 3 particles
    EXPECT_EQ(bgf.counters().samplesProcessed, 9u);
}

TEST(Bgf, NoiseDegradesGracefullyNotCatastrophically)
{
    // The Sec. 4.5 claim: moderate noise barely hurts.
    const auto ds = stripeData(60, 10);
    auto runWithNoise = [&](double rms) {
        Rng rng(11);
        accel::BgfConfig cfg;
        cfg.learningRate = 0.02;
        cfg.annealSteps = 2;
        cfg.analog.noise = {rms, rms};
        accel::BoltzmannGradientFollower bgf(10, 4, cfg, rng);
        rbm::Rbm init(10, 4);
        init.initRandom(rng, 0.01f);
        bgf.initialize(init);
        for (int epoch = 0; epoch < 30; ++epoch)
            bgf.trainEpoch(ds);
        return rbm::exact::meanLogLikelihood(bgf.readOut(), ds);
    };
    const double clean = runWithNoise(0.0);
    const double mild = runWithNoise(0.05);
    const double harsh = runWithNoise(0.3);
    EXPECT_GT(mild, clean - 1.0);   // <=10%: negligible
    EXPECT_GT(harsh, clean - 3.0);  // 30%: visible but not fatal
}
