/**
 * @file
 * Tests for the counter-driven cost model, including agreement with
 * the analytic Fig. 5 timing model on matched workloads.
 */

#include <gtest/gtest.h>

#include "data/glyphs.hpp"
#include "hw/activity.hpp"

using namespace ising;
using util::Rng;

namespace {

data::Dataset
smallImages(std::size_t n)
{
    data::Dataset raw = data::makeGlyphs(data::digitsStyle(), n, 7);
    return data::binarizeThreshold(raw);
}

} // namespace

TEST(Activity, BgfCountersPriceToPositiveCost)
{
    Rng rng(1);
    const data::Dataset ds = smallImages(50);
    accel::BgfConfig cfg;
    cfg.learningRate = 1e-3;
    cfg.annealSteps = 3;
    accel::BoltzmannGradientFollower bgf(ds.dim(), 32, cfg, rng);
    rbm::Rbm init(ds.dim(), 32);
    bgf.initialize(init);
    bgf.trainEpoch(ds);

    const hw::LayerShape shape{ds.dim(), 32};
    const auto cost = hw::bgfActivityCost(bgf.counters(), shape);
    EXPECT_GT(cost.fabricSec, 0.0);
    EXPECT_GT(cost.commSec, 0.0);
    EXPECT_EQ(cost.hostSec, 0.0);
    EXPECT_GT(cost.energyJ, 0.0);
}

TEST(Activity, GsCountersPriceToPositiveCost)
{
    Rng rng(2);
    const data::Dataset ds = smallImages(50);
    rbm::Rbm model(ds.dim(), 32);
    model.initRandom(rng);
    accel::GsConfig cfg;
    cfg.batchSize = 10;
    accel::GibbsSamplerAccel gs(model, cfg, rng);
    gs.trainEpoch(ds);

    const hw::LayerShape shape{ds.dim(), 32};
    const auto cost =
        hw::gsActivityCost(gs.counters(), shape, hw::tpuV1());
    EXPECT_GT(cost.fabricSec, 0.0);
    EXPECT_GT(cost.hostSec, 0.0);
    EXPECT_GT(cost.commSec, 0.0);
    // Host work dominates GS, as in Fig. 5's decomposition.
    EXPECT_GT(cost.hostSec, cost.fabricSec);
}

TEST(Activity, BgfAgreesWithAnalyticModelOnMatchedWorkload)
{
    // Run the behavioral BGF over N samples and compare the measured
    // counter cost against the Fig. 5 analytic prediction for the
    // same shape, k and sample count.  The two build the anneal time
    // from the same constants, so they must agree closely.
    Rng rng(3);
    const data::Dataset ds = smallImages(60);
    const int k = 5;
    accel::BgfConfig cfg;
    cfg.learningRate = 1e-3;
    cfg.annealSteps = k;
    accel::BoltzmannGradientFollower bgf(ds.dim(), 48, cfg, rng);
    rbm::Rbm init(ds.dim(), 48);
    bgf.initialize(init);
    bgf.trainEpoch(ds);

    const hw::LayerShape shape{ds.dim(), 48};
    const auto measured = hw::bgfActivityCost(bgf.counters(), shape);

    const hw::TimingModel timing;
    hw::Workload w{"matched", {shape}, k, 1, ds.size()};
    const double predicted = timing.bgfTime(w).total();
    // Fabric-time agreement within 25% (the analytic model charges a
    // full settle + pump per sample that the sweep decomposition
    // apportions slightly differently).
    EXPECT_NEAR(measured.fabricSec / predicted, 1.0, 0.25);
}

TEST(Activity, EnergyScalesWithWorkDone)
{
    Rng rng(4);
    const data::Dataset ds = smallImages(40);
    accel::BgfConfig cfg;
    cfg.learningRate = 1e-3;
    accel::BoltzmannGradientFollower bgf(ds.dim(), 24, cfg, rng);
    rbm::Rbm init(ds.dim(), 24);
    bgf.initialize(init);

    const hw::LayerShape shape{ds.dim(), 24};
    bgf.trainEpoch(ds);
    const double oneEpoch =
        hw::bgfActivityCost(bgf.counters(), shape).energyJ;
    bgf.trainEpoch(ds);
    const double twoEpochs =
        hw::bgfActivityCost(bgf.counters(), shape).energyJ;
    EXPECT_NEAR(twoEpochs / oneEpoch, 2.0, 0.05);
}
