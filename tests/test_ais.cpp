/**
 * @file
 * AIS validation against exact enumeration.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rbm/ais.hpp"
#include "rbm/exact.hpp"

using namespace ising::rbm;
using ising::util::Rng;

namespace {

Rbm
randomModel(std::size_t m, std::size_t n, std::uint64_t seed, float scale)
{
    Rbm model(m, n);
    Rng rng(seed);
    model.initRandom(rng, scale);
    for (std::size_t i = 0; i < m; ++i)
        model.visibleBias()[i] = static_cast<float>(rng.gaussian(0, 0.3));
    for (std::size_t j = 0; j < n; ++j)
        model.hiddenBias()[j] = static_cast<float>(rng.gaussian(0, 0.3));
    return model;
}

ising::data::Dataset
bernoulliData(std::size_t rows, std::size_t dim, std::uint64_t seed)
{
    ising::data::Dataset ds;
    ds.samples.reset(rows, dim);
    Rng rng(seed);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t i = 0; i < dim; ++i)
            ds.samples(r, i) = rng.bernoulli(0.4) ? 1.0f : 0.0f;
    return ds;
}

} // namespace

TEST(Ais, ExactOnZeroWeightModel)
{
    // With zero weights, AIS should be exact regardless of chain count:
    // every intermediate distribution equals the base distribution.
    Rbm model(10, 6);
    AisConfig cfg;
    cfg.numChains = 8;
    cfg.numBetas = 20;
    cfg.baseFromData = false;
    Rng rng(1);
    AisEstimator ais(cfg, rng);
    const auto z = ais.estimateLogZ(model, {});
    EXPECT_NEAR(z.logZ, 16.0 * std::log(2.0), 1e-6);
}

TEST(Ais, MatchesExactPartitionSmallModel)
{
    const Rbm model = randomModel(10, 5, 2, 0.5f);
    const double exactZ = exact::logPartition(model);
    AisConfig cfg;
    cfg.numChains = 128;
    cfg.numBetas = 300;
    cfg.baseFromData = false;
    Rng rng(3);
    AisEstimator ais(cfg, rng);
    const auto z = ais.estimateLogZ(model, {});
    EXPECT_NEAR(z.logZ, exactZ, 0.15);
}

TEST(Ais, DataBaseRateAlsoMatches)
{
    const Rbm model = randomModel(8, 4, 4, 0.6f);
    const double exactZ = exact::logPartition(model);
    const auto train = bernoulliData(50, 8, 5);
    AisConfig cfg;
    cfg.numChains = 128;
    cfg.numBetas = 300;
    cfg.baseFromData = true;
    Rng rng(6);
    AisEstimator ais(cfg, rng);
    const auto z = ais.estimateLogZ(model, train);
    EXPECT_NEAR(z.logZ, exactZ, 0.15);
}

TEST(Ais, StdErrShrinksWithMoreChains)
{
    const Rbm model = randomModel(8, 4, 7, 0.8f);
    Rng rng(8);
    AisConfig small;
    small.numChains = 16;
    small.numBetas = 100;
    AisConfig big = small;
    big.numChains = 256;
    AisEstimator aisSmall(small, rng), aisBig(big, rng);
    const auto zs = aisSmall.estimateLogZ(model, {});
    const auto zb = aisBig.estimateLogZ(model, {});
    EXPECT_LT(zb.logZStdErr, zs.logZStdErr + 1e-9);
}

TEST(Ais, AverageLogProbMatchesExact)
{
    const Rbm model = randomModel(8, 4, 9, 0.5f);
    const auto data = bernoulliData(30, 8, 10);
    Rng rng(11);
    AisConfig cfg;
    cfg.numChains = 128;
    cfg.numBetas = 250;
    AisEstimator ais(cfg, rng);
    const double approx = ais.averageLogProb(model, data, data);
    const double exactLL = exact::meanLogLikelihood(model, data);
    EXPECT_NEAR(approx, exactLL, 0.2);
}

TEST(Ais, MoreBetasReduceBias)
{
    // Coarse annealing overestimates variance; check that a finer path
    // gets closer to the exact answer than a very coarse one on a
    // strongly coupled model.
    const Rbm model = randomModel(10, 5, 12, 1.2f);
    const double exactZ = exact::logPartition(model);
    Rng rng(13);
    AisConfig coarse;
    coarse.numChains = 64;
    coarse.numBetas = 5;
    AisConfig fine = coarse;
    fine.numBetas = 500;
    const double errCoarse = std::fabs(
        AisEstimator(coarse, rng).estimateLogZ(model, {}).logZ - exactZ);
    const double errFine = std::fabs(
        AisEstimator(fine, rng).estimateLogZ(model, {}).logZ - exactZ);
    EXPECT_LT(errFine, errCoarse + 0.05);
}
