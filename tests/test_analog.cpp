/**
 * @file
 * Tests for the analog fabric behavioral model, including the
 * behavioral-vs-ideal and behavioral-vs-BRIM cross-validations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ising/analog.hpp"
#include "ising/bipartite.hpp"
#include "ising/brim.hpp"
#include "rbm/rbm.hpp"

using namespace ising;
using machine::AnalogConfig;
using machine::AnalogFabric;
using util::Rng;

namespace {

rbm::Rbm
randomModel(std::size_t m, std::size_t n, std::uint64_t seed,
            float scale = 0.5f)
{
    rbm::Rbm model(m, n);
    Rng rng(seed);
    model.initRandom(rng, scale);
    for (std::size_t i = 0; i < m; ++i)
        model.visibleBias()[i] = static_cast<float>(rng.gaussian(0, 0.3));
    for (std::size_t j = 0; j < n; ++j)
        model.hiddenBias()[j] = static_cast<float>(rng.gaussian(0, 0.3));
    return model;
}

AnalogConfig
idealConfig()
{
    AnalogConfig cfg;
    cfg.idealComponents = true;
    return cfg;
}

} // namespace

TEST(AnalogFabric, ProgramReadoutRoundTripIdeal)
{
    Rng rng(1);
    const rbm::Rbm model = randomModel(12, 8, 2);
    AnalogFabric fabric(12, 8, idealConfig(), rng);
    fabric.program(model);
    rbm::Rbm out;
    fabric.readOut(out);
    EXPECT_EQ(out.weights(), model.weights());
    EXPECT_EQ(out.visibleBias(), model.visibleBias());
}

TEST(AnalogFabric, ProgramReadoutWithinQuantization)
{
    Rng rng(2);
    const rbm::Rbm model = randomModel(10, 6, 3);
    AnalogConfig cfg;  // 8-bit converters, weightMax 2.0
    AnalogFabric fabric(10, 6, cfg, rng);
    fabric.program(model);
    rbm::Rbm out;
    fabric.readOut(out);
    const double lsb = 2.0 * cfg.weightMax / 255.0;
    for (std::size_t i = 0; i < model.weights().size(); ++i)
        EXPECT_NEAR(out.weights().data()[i], model.weights().data()[i],
                    lsb + 1e-6);
}

TEST(AnalogFabric, IdealHiddenSamplingMatchesRbmConditional)
{
    // Statistical check: ideal fabric sampling frequencies match the
    // exact P(h_j=1|v) of the programmed RBM.
    Rng rng(3);
    const rbm::Rbm model = randomModel(8, 4, 4, 0.8f);
    AnalogFabric fabric(8, 4, idealConfig(), rng);
    fabric.program(model);

    linalg::Vector v(8);
    for (std::size_t i = 0; i < 8; ++i)
        v[i] = (i % 2) ? 1.0f : 0.0f;
    linalg::Vector ph;
    model.hiddenProbs(v.data(), ph);

    std::vector<double> freq(4, 0.0);
    linalg::Vector h;
    const int trials = 30000;
    for (int t = 0; t < trials; ++t) {
        fabric.sampleHidden(v, h, rng);
        for (std::size_t j = 0; j < 4; ++j)
            freq[j] += h[j];
    }
    for (std::size_t j = 0; j < 4; ++j)
        EXPECT_NEAR(freq[j] / trials, ph[j], 0.015) << j;
}

TEST(AnalogFabric, IdealVisibleSamplingMatchesRbmConditional)
{
    Rng rng(4);
    const rbm::Rbm model = randomModel(6, 5, 5, 0.8f);
    AnalogFabric fabric(6, 5, idealConfig(), rng);
    fabric.program(model);

    linalg::Vector h(5);
    h[0] = h[3] = 1.0f;
    linalg::Vector pv;
    model.visibleProbs(h.data(), pv);

    std::vector<double> freq(6, 0.0);
    linalg::Vector v;
    const int trials = 30000;
    for (int t = 0; t < trials; ++t) {
        fabric.sampleVisible(h, v, rng);
        for (std::size_t i = 0; i < 6; ++i)
            freq[i] += v[i];
    }
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_NEAR(freq[i] / trials, pv[i], 0.015) << i;
}

TEST(AnalogFabric, CircuitSamplingCloseToIdeal)
{
    // With default (non-ideal) components, sampling frequencies may
    // deviate but must stay close -- the Cadence-validation claim.
    Rng rng(5);
    const rbm::Rbm model = randomModel(8, 4, 6, 0.6f);
    AnalogConfig cfg;  // non-ideal defaults, no noise
    AnalogFabric fabric(8, 4, cfg, rng);
    fabric.program(model);

    linalg::Vector v(8);
    for (std::size_t i = 0; i < 8; ++i)
        v[i] = (i < 4) ? 1.0f : 0.0f;
    linalg::Vector ph;
    model.hiddenProbs(v.data(), ph);

    std::vector<double> freq(4, 0.0);
    linalg::Vector h;
    const int trials = 30000;
    for (int t = 0; t < trials; ++t) {
        fabric.sampleHidden(v, h, rng);
        for (std::size_t j = 0; j < 4; ++j)
            freq[j] += h[j];
    }
    for (std::size_t j = 0; j < 4; ++j)
        EXPECT_NEAR(freq[j] / trials, ph[j], 0.06) << j;
}

TEST(AnalogFabric, ClampQuantizesThroughDtc)
{
    Rng rng(6);
    AnalogConfig cfg;
    cfg.dtcBits = 2;  // coarse: levels 0, 1/3, 2/3, 1
    AnalogFabric fabric(4, 2, cfg, rng);
    const float data[4] = {0.4f, 0.9f, 0.0f, 1.0f};
    linalg::Vector v;
    fabric.clampVisible(data, v);
    EXPECT_NEAR(v[0], 1.0f / 3.0f, 1e-6);
    EXPECT_NEAR(v[1], 1.0f, 1e-6);
}

TEST(AnalogFabric, PumpUpdateTouchesOnlyActiveCouplers)
{
    Rng rng(7);
    const rbm::Rbm model = randomModel(5, 4, 8, 0.2f);
    AnalogFabric fabric(5, 4, idealConfig(), rng);
    fabric.program(model);
    const linalg::Matrix before = fabric.rawWeights();

    linalg::Vector v(5), h(4);
    v[1] = 1.0f;
    h[2] = 1.0f;
    fabric.pumpUpdate(v, h, +1, rng);
    const linalg::Matrix &after = fabric.rawWeights();
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            if (i == 1 && j == 2)
                EXPECT_GT(after(i, j), before(i, j));
            else
                EXPECT_EQ(after(i, j), before(i, j)) << i << "," << j;
        }
    }
}

TEST(AnalogFabric, PumpDirectionSigns)
{
    Rng rng(8);
    AnalogConfig cfg = idealConfig();
    cfg.pumpStep = 0.01;
    AnalogFabric fabric(3, 3, cfg, rng);
    rbm::Rbm zero(3, 3);
    fabric.program(zero);
    linalg::Vector v(3, 1.0f), h(3, 1.0f);
    fabric.pumpUpdate(v, h, +1, rng);
    EXPECT_NEAR(fabric.rawWeights()(0, 0), 0.01f, 1e-6);
    fabric.pumpUpdate(v, h, -1, rng);
    fabric.pumpUpdate(v, h, -1, rng);
    EXPECT_NEAR(fabric.rawWeights()(0, 0), -0.01f, 1e-6);
}

TEST(AnalogFabric, BiasCouplersFollowActiveUnits)
{
    Rng rng(9);
    AnalogConfig cfg = idealConfig();
    cfg.pumpStep = 0.02;
    AnalogFabric fabric(3, 2, cfg, rng);
    rbm::Rbm zero(3, 2);
    fabric.program(zero);
    linalg::Vector v(3), h(2);
    v[0] = 1.0f;  // only visible 0 active; no hidden active
    fabric.pumpUpdate(v, h, +1, rng);
    EXPECT_NEAR(fabric.rawVisibleBias()[0], 0.02f, 1e-6);
    EXPECT_EQ(fabric.rawVisibleBias()[1], 0.0f);
    EXPECT_EQ(fabric.rawHiddenBias()[0], 0.0f);
}

TEST(AnalogFabric, StaticVariationIsFrozen)
{
    // Two fabrics with the same variationSeed behave identically.
    AnalogConfig cfg;
    cfg.noise.rmsVariation = 0.2;
    cfg.variationSeed = 42;
    Rng rngA(10), rngB(10);
    const rbm::Rbm model = randomModel(6, 4, 11);
    AnalogFabric a(6, 4, cfg, rngA), b(6, 4, cfg, rngB);
    a.program(model);
    b.program(model);
    linalg::Vector v(6, 1.0f), ha, hb;
    a.sampleHidden(v, ha, rngA);
    b.sampleHidden(v, hb, rngB);
    EXPECT_EQ(ha, hb);
}

TEST(AnalogFabric, DynamicNoiseAddsSamplingVariance)
{
    // A strongly biased unit flips essentially never without noise but
    // occasionally with 30% dynamic noise.
    // Mixed-sign couplings: the summed current is small but the
    // per-coupler noise power is large, so dynamic noise visibly
    // perturbs the sample while the noiseless unit is stable.
    Rng rng(12);
    rbm::Rbm model(4, 2);
    for (std::size_t j = 0; j < 2; ++j)
        model.hiddenBias()[j] = 4.0f;  // P(h=1) ~ 0.982
    for (std::size_t i = 0; i < 4; ++i)
        model.weights()(i, 0) = (i % 2) ? 4.0f : -4.0f;

    auto flipRate = [&](double rmsNoise) {
        AnalogConfig cfg = idealConfig();
        cfg.noise.rmsNoise = rmsNoise;
        AnalogFabric fabric(4, 2, cfg, rng);
        fabric.program(model);
        linalg::Vector v(4, 1.0f), h;
        int zeros = 0;
        const int trials = 20000;
        for (int t = 0; t < trials; ++t) {
            fabric.sampleHidden(v, h, rng);
            zeros += h[0] < 0.5f;
        }
        return static_cast<double>(zeros) / trials;
    };
    EXPECT_GT(flipRate(0.5), flipRate(0.0) + 0.01);
}

TEST(AnalogFabric, BehavioralMatchesBrimAt32x32)
{
    // The paper validates its behavioral models against a 32x32-node
    // Cadence BGF.  Here: embed a random 32x32 RBM as an Ising
    // instance, draw clamped-visible hidden marginals from the BRIM
    // transient simulator (with Langevin noise) and from the
    // behavioral fabric, and require positive agreement between the
    // per-unit marginals.
    Rng rng(13);
    rbm::Rbm model(32, 32);
    model.initRandom(rng, 0.8f);

    // Behavioral marginals.
    AnalogFabric fabric(32, 32, idealConfig(), rng);
    fabric.program(model);
    linalg::Vector v(32);
    for (std::size_t i = 0; i < 32; ++i)
        v[i] = (i % 3 == 0) ? 1.0f : 0.0f;
    std::vector<double> behavioral(32, 0.0);
    linalg::Vector h;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
        fabric.sampleHidden(v, h, rng);
        for (std::size_t j = 0; j < 32; ++j)
            behavioral[j] += h[j];
    }
    for (auto &x : behavioral)
        x /= trials;

    // Transient-simulator marginals with visible nodes clamped.
    const machine::RbmEmbedding emb = machine::embedRbm(model);
    machine::BrimConfig bcfg;
    bcfg.dt = 0.05;
    bcfg.temperature = 0.6;
    machine::BrimSimulator sim(emb.model, bcfg, rng);
    std::vector<double> transient(32, 0.0);
    const int reads = 400;
    for (std::size_t i = 0; i < 32; ++i)
        sim.clampNode(emb.layout.visibleNode(i), v[i] > 0.5f ? 1.0 : -1.0);
    for (int r = 0; r < reads; ++r) {
        for (int s = 0; s < 40; ++s)
            sim.step(0.0);
        const auto spins = sim.spins();
        for (std::size_t j = 0; j < 32; ++j)
            transient[j] += spins[emb.layout.hiddenNode(j)] > 0 ? 1.0 : 0.0;
    }
    for (auto &x : transient)
        x /= reads;

    // The two marginal profiles must correlate strongly.
    double meanB = 0.0, meanT = 0.0;
    for (std::size_t j = 0; j < 32; ++j) {
        meanB += behavioral[j];
        meanT += transient[j];
    }
    meanB /= 32;
    meanT /= 32;
    double cov = 0.0, varB = 0.0, varT = 0.0;
    for (std::size_t j = 0; j < 32; ++j) {
        cov += (behavioral[j] - meanB) * (transient[j] - meanT);
        varB += (behavioral[j] - meanB) * (behavioral[j] - meanB);
        varT += (transient[j] - meanT) * (transient[j] - meanT);
    }
    const double corr = cov / std::sqrt(varB * varT + 1e-12);
    EXPECT_GT(corr, 0.5);
}
