/**
 * @file
 * Chain-level equivalence for the batched sampling surface:
 *
 *  - the software backend's bit-packed batched kernels must reproduce
 *    the scalar float chains bit-for-bit (same per-chain RNG streams);
 *  - results must be invariant to the worker count and to the
 *    chains-over-threads vs units-over-threads kernel shape;
 *  - backends without a native batched path (the analog fabric) must
 *    keep working through the scalar-loop default implementations.
 */

#include <gtest/gtest.h>

#include <vector>

#include "accel/fabric_backend.hpp"
#include "linalg/ops.hpp"
#include "rbm/cd_trainer.hpp"
#include "rbm/sampling.hpp"
#include "rbm/sampling_backend.hpp"

using namespace ising;
using util::Rng;

namespace {

/**
 * Forwards the scalar half-sweeps to a wrapped backend but inherits
 * every default implementation, so chains through it run the plain
 * float chain-at-a-time path -- the reference the packed/batched
 * kernels must match bit-for-bit.
 */
class ScalarOnlyBackend final : public rbm::SamplingBackend
{
  public:
    explicit ScalarOnlyBackend(const rbm::SamplingBackend &inner)
        : inner_(inner)
    {}

    std::size_t numVisible() const override { return inner_.numVisible(); }
    std::size_t numHidden() const override { return inner_.numHidden(); }
    const char *name() const override { return "scalar-ref"; }

    void
    sampleHidden(const linalg::Vector &v, linalg::Vector &h,
                 linalg::Vector &ph, util::Rng &rng) const override
    {
        inner_.sampleHidden(v, h, ph, rng);
    }

    void
    sampleVisible(const linalg::Vector &h, linalg::Vector &v,
                  linalg::Vector &pv, util::Rng &rng) const override
    {
        inner_.sampleVisible(h, v, pv, rng);
    }

  private:
    const rbm::SamplingBackend &inner_;
};

/** Ragged model (sizes not divisible by 64) with strong structure. */
rbm::Rbm
testModel(std::size_t m = 67, std::size_t n = 35)
{
    Rng rng(3);
    rbm::Rbm model(m, n);
    model.initRandom(rng, 0.6f);
    return model;
}

linalg::Matrix
randomBinaryBatch(std::size_t rows, std::size_t cols, Rng &rng)
{
    linalg::Matrix out(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            out(r, c) = rng.bernoulli(0.5) ? 1.0f : 0.0f;
    return out;
}

std::vector<Rng>
streams(std::uint64_t seed, std::size_t count)
{
    std::vector<Rng> out;
    out.reserve(count);
    for (std::size_t r = 0; r < count; ++r)
        out.push_back(Rng::stream(seed, r));
    return out;
}

void
expectSameMatrix(const linalg::Matrix &a, const linalg::Matrix &b,
                 const char *what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    EXPECT_EQ(linalg::maxAbsDiff(a, b), 0.0) << what;
}

data::Dataset
binaryDataset(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    data::Dataset ds;
    ds.name = "synthetic-binary";
    ds.samples = randomBinaryBatch(rows, cols, rng);
    return ds;
}

} // namespace

TEST(BatchedSampling, PackedHiddenSweepMatchesScalarFloatPath)
{
    const rbm::Rbm model = testModel();
    const rbm::SoftwareGibbsBackend software(model);
    const ScalarOnlyBackend scalar(software);

    Rng init(41);
    const linalg::Matrix v = randomBinaryBatch(9, model.numVisible(), init);

    std::vector<Rng> a = streams(5, 9), b = streams(5, 9);
    linalg::Matrix hPacked, phPacked, hFloat, phFloat;
    software.sampleHiddenBatch(v, hPacked, phPacked, a.data());
    scalar.sampleHiddenBatch(v, hFloat, phFloat, b.data());
    expectSameMatrix(hPacked, hFloat, "hidden samples");
    expectSameMatrix(phPacked, phFloat, "hidden means");
}

TEST(BatchedSampling, PackedVisibleSweepMatchesScalarFloatPath)
{
    const rbm::Rbm model = testModel();
    const rbm::SoftwareGibbsBackend software(model);
    const ScalarOnlyBackend scalar(software);

    Rng init(42);
    const linalg::Matrix h = randomBinaryBatch(9, model.numHidden(), init);

    std::vector<Rng> a = streams(6, 9), b = streams(6, 9);
    linalg::Matrix vPacked, pvPacked, vFloat, pvFloat;
    software.sampleVisibleBatch(h, vPacked, pvPacked, a.data());
    scalar.sampleVisibleBatch(h, vFloat, pvFloat, b.data());
    expectSameMatrix(vPacked, vFloat, "visible samples");
    expectSameMatrix(pvPacked, pvFloat, "visible means");
}

TEST(BatchedSampling, PackedAnnealMatchesScalarFloatChains)
{
    const rbm::Rbm model = testModel();
    const rbm::SoftwareGibbsBackend software(model);
    const ScalarOnlyBackend scalar(software);

    Rng init(43);
    const linalg::Matrix h0 = randomBinaryBatch(7, model.numHidden(), init);

    std::vector<Rng> a = streams(7, 7), b = streams(7, 7);
    linalg::Matrix vA, hA = h0, pvA, phA;
    linalg::Matrix vB, hB = h0, pvB, phB;
    software.annealBatch(4, vA, hA, pvA, phA, a.data());
    scalar.annealBatch(4, vB, hB, pvB, phB, b.data());
    expectSameMatrix(vA, vB, "visible walk");
    expectSameMatrix(hA, hB, "hidden walk");
    expectSameMatrix(pvA, pvB, "visible means");
    expectSameMatrix(phA, phB, "hidden means");
}

TEST(BatchedSampling, NonBinaryInputFallsBackToFloatPath)
{
    const rbm::Rbm model = testModel();
    const rbm::SoftwareGibbsBackend software(model);
    const ScalarOnlyBackend scalar(software);

    Rng init(44);
    linalg::Matrix v = randomBinaryBatch(4, model.numVisible(), init);
    v(2, 5) = 0.37f;  // probabilities, not bits: unpackable

    std::vector<Rng> a = streams(8, 4), b = streams(8, 4);
    linalg::Matrix hA, phA, hB, phB;
    software.sampleHiddenBatch(v, hA, phA, a.data());
    scalar.sampleHiddenBatch(v, hB, phB, b.data());
    expectSameMatrix(hA, hB, "fallback hidden samples");
    expectSameMatrix(phA, phB, "fallback hidden means");
}

TEST(BatchedSampling, KernelShapeAndWorkerCountDoNotChangeResults)
{
    const rbm::Rbm model = testModel(130, 70);
    exec::ThreadPool serial(1), wide(8);
    const rbm::SoftwareGibbsBackend one(model, &serial);
    const rbm::SoftwareGibbsBackend many(model, &wide);

    Rng init(45);
    // batch 2 < 8 workers forces the units-over-threads shape on the
    // wide pool while the serial pool runs chains-over-threads.
    for (const std::size_t batch : {2u, 16u}) {
        const linalg::Matrix h0 =
            randomBinaryBatch(batch, model.numHidden(), init);
        std::vector<Rng> a = streams(9, batch), b = streams(9, batch);
        linalg::Matrix vA, hA = h0, pvA, phA;
        linalg::Matrix vB, hB = h0, pvB, phB;
        one.annealBatch(3, vA, hA, pvA, phA, a.data());
        many.annealBatch(3, vB, hB, pvB, phB, b.data());
        expectSameMatrix(vA, vB, "visible walk");
        expectSameMatrix(hA, hB, "hidden walk");
        expectSameMatrix(pvA, pvB, "visible means");
        expectSameMatrix(phA, phB, "hidden means");
    }
}

TEST(BatchedSampling, FantasySamplesIdenticalOnPackedAndFloatPaths)
{
    const rbm::Rbm model = testModel();
    const rbm::SoftwareGibbsBackend software(model);
    const ScalarOnlyBackend scalar(software);

    Rng a(51), b(51);
    const data::Dataset packed = rbm::fantasySamples(software, 12, 6, a);
    const data::Dataset ref = rbm::fantasySamples(scalar, 12, 6, b);
    expectSameMatrix(packed.samples, ref.samples, "fantasy samples");
}

TEST(BatchedSampling, ConditionalSamplesIdenticalOnPackedAndFloatPaths)
{
    const rbm::Rbm model = testModel();
    const rbm::SoftwareGibbsBackend software(model);
    const ScalarOnlyBackend scalar(software);

    std::vector<float> mask(model.numVisible(), -1.0f);
    mask[0] = 1.0f;
    mask[3] = 0.0f;
    Rng a(52), b(52);
    const data::Dataset packed =
        rbm::conditionalSamples(software, mask, 8, 5, a);
    const data::Dataset ref =
        rbm::conditionalSamples(scalar, mask, 8, 5, b);
    expectSameMatrix(packed.samples, ref.samples, "conditional samples");
}

TEST(BatchedSampling, CdTrainerIsWorkerCountInvariant)
{
    const data::Dataset train = binaryDataset(40, 67, 61);
    for (const bool persistent : {false, true}) {
        exec::ThreadPool serial(1), wide(3);
        rbm::Rbm a = testModel(), b = testModel();
        Rng rngA(71), rngB(71);

        rbm::CdConfig cfg;
        cfg.k = 2;
        cfg.batchSize = 13;  // ragged: exercises short final batches
        cfg.persistent = persistent;
        cfg.numParticles = 5;  // ragged round-robin over positions
        cfg.learningRate = 0.05;
        cfg.momentum = 0.5;
        cfg.weightDecay = 1e-4;

        rbm::CdConfig cfgA = cfg, cfgB = cfg;
        cfgA.pool = &serial;
        cfgB.pool = &wide;
        rbm::CdTrainer trainerA(a, cfgA, rngA);
        rbm::CdTrainer trainerB(b, cfgB, rngB);
        trainerA.trainEpoch(train);
        trainerA.trainEpoch(train);
        trainerB.trainEpoch(train);
        trainerB.trainEpoch(train);

        expectSameMatrix(a.weights(), b.weights(),
                         persistent ? "pcd weights" : "cd weights");
        EXPECT_TRUE(a.visibleBias() == b.visibleBias());
        EXPECT_TRUE(a.hiddenBias() == b.hiddenBias());
    }
}

TEST(BatchedSampling, AnalogFabricWorksThroughBatchedDefaults)
{
    Rng rng(81);
    const rbm::Rbm model = testModel(20, 12);
    machine::AnalogConfig cfg;
    const accel::AnalogFabricBackend fabric(model, cfg, rng);

    Rng init(82);
    const linalg::Matrix v = randomBinaryBatch(5, model.numVisible(), init);
    std::vector<Rng> batchRngs = streams(10, 5), rowRngs = streams(10, 5);

    linalg::Matrix h, ph;
    fabric.sampleHiddenBatch(v, h, ph, batchRngs.data());
    ASSERT_EQ(h.rows(), 5u);
    ASSERT_EQ(h.cols(), model.numHidden());
    // The default implementation must equal scalar calls row by row on
    // the same streams.
    for (std::size_t r = 0; r < 5; ++r) {
        linalg::Vector vr(model.numVisible()), hr, pr;
        std::copy_n(v.row(r), model.numVisible(), vr.data());
        fabric.sampleHidden(vr, hr, pr, rowRngs[r]);
        for (std::size_t j = 0; j < model.numHidden(); ++j) {
            EXPECT_EQ(h(r, j), hr[j]) << "row " << r << " unit " << j;
            EXPECT_TRUE(h(r, j) == 0.0f || h(r, j) == 1.0f);
        }
    }

    // Batched anneal through the defaults keeps states binary and
    // matches per-row scalar anneal on the same streams.
    linalg::Matrix vw, hw = randomBinaryBatch(5, model.numHidden(), init);
    const linalg::Matrix h0 = hw;
    linalg::Matrix pvw, phw;
    std::vector<Rng> aw = streams(11, 5), bw = streams(11, 5);
    fabric.annealBatch(3, vw, hw, pvw, phw, aw.data());
    for (std::size_t r = 0; r < 5; ++r) {
        linalg::Vector vr, hr(model.numHidden()), pvr, phr;
        std::copy_n(h0.row(r), model.numHidden(), hr.data());
        fabric.anneal(3, vr, hr, pvr, phr, bw[r]);
        for (std::size_t i = 0; i < model.numVisible(); ++i)
            EXPECT_EQ(vw(r, i), vr[i]) << "row " << r << " unit " << i;
        for (std::size_t j = 0; j < model.numHidden(); ++j)
            EXPECT_EQ(hw(r, j), hr[j]) << "row " << r << " unit " << j;
    }
}
