/**
 * @file
 * Equivalence suite for the bit-packed kernels: every packed path must
 * agree *bit-for-bit* with the float path on binary states, including
 * ragged sizes not divisible by the 64-bit word width, because the
 * sampling backends select between the two representations freely.
 */

#include <gtest/gtest.h>

#include <vector>

#include "linalg/bitops.hpp"
#include "linalg/ops.hpp"
#include "rbm/rbm.hpp"

using namespace ising;
using linalg::BitMatrix;
using linalg::BitVector;
using linalg::Matrix;
using linalg::Vector;
using util::Rng;

namespace {

/** Random weights and biases of the given shape. */
struct Model
{
    Matrix w;
    Vector b;

    Model(std::size_t p, std::size_t q, Rng &rng)
        : w(p, q), b(q)
    {
        for (std::size_t i = 0; i < w.size(); ++i)
            w.data()[i] = static_cast<float>(rng.gaussian(0.0, 0.8));
        for (std::size_t j = 0; j < q; ++j)
            b[j] = static_cast<float>(rng.gaussian(0.0, 0.5));
    }
};

Vector
randomBinary(std::size_t n, Rng &rng, double pOne = 0.5)
{
    Vector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = rng.bernoulli(pOne) ? 1.0f : 0.0f;
    return v;
}

/** Shapes chosen to exercise word-aligned and ragged bit counts. */
const std::vector<std::pair<std::size_t, std::size_t>> kShapes = {
    {1, 1}, {63, 17}, {64, 64}, {65, 128}, {100, 35}, {130, 70},
};

} // namespace

TEST(BitVector, PackUnpackRoundTripsRaggedSizes)
{
    Rng rng(11);
    for (const std::size_t n : {1u, 63u, 64u, 65u, 100u, 130u, 257u}) {
        const Vector v = randomBinary(n, rng);
        BitVector bits;
        bits.packFrom(v.data(), n);
        ASSERT_EQ(bits.size(), n);
        Vector back(n);
        bits.unpackTo(back.data());
        EXPECT_TRUE(back == v) << "n=" << n;
        std::size_t ones = 0;
        for (std::size_t i = 0; i < n; ++i)
            ones += v[i] != 0.0f;
        EXPECT_EQ(bits.countOnes(), ones) << "n=" << n;
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(bits.test(i), v[i] != 0.0f);
    }
}

TEST(BitMatrix, RowPackingKeepsPadBitsZero)
{
    Rng rng(12);
    BitMatrix bm(3, 70);
    Vector row = randomBinary(70, rng);
    bm.packRowFrom(1, row.data());
    // Repack with a denser row: stale bits must not survive.
    Vector dense(70, 1.0f);
    bm.packRowFrom(1, dense.data());
    bm.packRowFrom(1, row.data());
    Vector back(70);
    bm.unpackRowTo(1, back.data());
    EXPECT_TRUE(back == row);
    // Pad bits beyond column 70 stay zero (whole-word iteration relies
    // on this).
    EXPECT_EQ(bm.row(1)[1] >> 6, 0ull);
}

TEST(BitOps, AccumulateRowsMaskedMatchesFloatGemvT)
{
    Rng rng(21);
    for (const auto &[p, q] : kShapes) {
        const Model model(p, q, rng);
        for (int trial = 0; trial < 8; ++trial) {
            const Vector x = randomBinary(p, rng);
            BitVector bits;
            bits.packFrom(x.data(), p);

            Vector want, got;
            linalg::gemvT(model.w, x, model.b, want);
            linalg::accumulateRowsMasked(model.w, bits, model.b, got);
            ASSERT_EQ(got.size(), want.size());
            for (std::size_t j = 0; j < q; ++j)
                EXPECT_EQ(got[j], want[j])
                    << p << "x" << q << " unit " << j;
        }
    }
}

TEST(BitOps, FusedKernelMatchesFloatSigmoidThenSample)
{
    Rng rng(22);
    for (const auto &[p, q] : kShapes) {
        const Model model(p, q, rng);
        const Vector x = randomBinary(p, rng);
        BitVector bits;
        bits.packFrom(x.data(), p);

        // Float pipeline: affineSigmoid then Rbm::sampleBinary.
        Vector wantMeans, wantSample;
        Rng floatRng(777);
        linalg::affineSigmoid(model.w, x.data(), model.b, wantMeans);
        rbm::Rbm::sampleBinary(wantMeans, wantSample, floatRng);

        // Packed fused kernel on an identical stream.
        BitVector outBits;
        Vector gotMeans;
        Rng packedRng(777);
        linalg::affineSigmoidBernoulli(model.w, bits, model.b, outBits,
                                       gotMeans, packedRng);

        ASSERT_EQ(gotMeans.size(), q);
        for (std::size_t j = 0; j < q; ++j) {
            EXPECT_EQ(gotMeans[j], wantMeans[j])
                << p << "x" << q << " mean " << j;
            EXPECT_EQ(outBits.test(j), wantSample[j] != 0.0f)
                << p << "x" << q << " bit " << j;
        }
        // Identical consumption: both generators must be in the same
        // state afterwards.
        EXPECT_EQ(floatRng.next(), packedRng.next());
    }
}

TEST(BitOps, SampleBatchMatchesPerChainFusedKernel)
{
    Rng rng(23);
    for (const auto &[p, q] : kShapes) {
        const Model model(p, q, rng);
        const std::size_t batch = 7;

        BitMatrix in(batch, p);
        std::vector<Vector> inRows;
        for (std::size_t r = 0; r < batch; ++r) {
            inRows.push_back(randomBinary(p, rng));
            in.packRowFrom(r, inRows.back().data());
        }

        std::vector<Rng> batchRngs, chainRngs;
        for (std::size_t r = 0; r < batch; ++r) {
            batchRngs.push_back(Rng::stream(99, r));
            chainRngs.push_back(Rng::stream(99, r));
        }

        BitMatrix out;
        Matrix means;
        linalg::sampleBatch(model.w, in, model.b, out, means,
                            batchRngs.data());
        ASSERT_EQ(means.rows(), batch);
        ASSERT_EQ(means.cols(), q);

        for (std::size_t r = 0; r < batch; ++r) {
            BitVector bits, wantBits;
            bits.packFrom(inRows[r].data(), p);
            Vector wantMeans;
            linalg::affineSigmoidBernoulli(model.w, bits, model.b,
                                           wantBits, wantMeans,
                                           chainRngs[r]);
            for (std::size_t j = 0; j < q; ++j) {
                EXPECT_EQ(means.row(r)[j], wantMeans[j])
                    << p << "x" << q << " chain " << r << " mean " << j;
                EXPECT_EQ(out.test(r, j), wantBits.test(j))
                    << p << "x" << q << " chain " << r << " bit " << j;
            }
        }
    }
}

TEST(BitOps, AccumulateBatchTileCoversArbitrarySplits)
{
    // Column/row tiles must compose to the same result as one full
    // tile -- this is what lets the backend thread over units within
    // a sweep without changing a single bit.
    Rng rng(24);
    const std::size_t p = 130, q = 70, batch = 5;
    const Model model(p, q, rng);
    BitMatrix in(batch, p);
    for (std::size_t r = 0; r < batch; ++r) {
        const Vector row = randomBinary(p, rng);
        in.packRowFrom(r, row.data());
    }

    Matrix whole(batch, q), split(batch, q);
    linalg::accumulateBatchTile(model.w, in, model.b, whole, 0, batch, 0,
                                q);
    for (const std::size_t cut : {1u, 33u, 64u, 69u}) {
        split.fill(-1.0f);
        linalg::accumulateBatchTile(model.w, in, model.b, split, 0, 2, 0,
                                    cut);
        linalg::accumulateBatchTile(model.w, in, model.b, split, 0, 2,
                                    cut, q);
        linalg::accumulateBatchTile(model.w, in, model.b, split, 2,
                                    batch, 0, cut);
        linalg::accumulateBatchTile(model.w, in, model.b, split, 2,
                                    batch, cut, q);
        for (std::size_t r = 0; r < batch; ++r)
            for (std::size_t j = 0; j < q; ++j)
                EXPECT_EQ(split(r, j), whole(r, j))
                    << "cut " << cut << " at (" << r << ", " << j << ")";
    }
}

TEST(BitOps, IsBinaryDetectsNonBinaryEntries)
{
    Matrix m(2, 3, 1.0f);
    EXPECT_TRUE(linalg::isBinary01(m));
    m(1, 2) = 0.0f;
    EXPECT_TRUE(linalg::isBinary01(m));
    m(0, 1) = 0.5f;
    EXPECT_FALSE(linalg::isBinary01(m));
}

TEST(BitOps, PackTransposedMirrorsTheFloatMatrix)
{
    Rng rng(31);
    Matrix src(5, 70);
    for (std::size_t r = 0; r < src.rows(); ++r)
        for (std::size_t c = 0; c < src.cols(); ++c)
            src(r, c) = rng.bernoulli(0.5) ? 1.0f : 0.0f;
    BitMatrix t;
    linalg::packTransposed(src, t);
    ASSERT_EQ(t.rows(), src.cols());
    ASSERT_EQ(t.cols(), src.rows());
    for (std::size_t r = 0; r < src.rows(); ++r)
        for (std::size_t c = 0; c < src.cols(); ++c)
            EXPECT_EQ(t.test(c, r), src(r, c) != 0.0f)
                << "(" << r << ", " << c << ")";
}

TEST(BitOps, OuterCountDiffEqualsFloatGradientReduce)
{
    // The popcount reduce must agree exactly with the float-MAC
    // gradient reduce on binary states for batch sizes across the
    // word-specialization tiers (1, 2, 4, 8 words and the fallback).
    Rng rng(32);
    const std::size_t m = 37, n = 21;
    for (const std::size_t batch : {5u, 64u, 100u, 250u, 500u, 600u}) {
        Matrix vpos(batch, m), vneg(batch, m), hpos(batch, n),
            hneg(batch, n);
        auto fill = [&](Matrix &mat) {
            for (std::size_t r = 0; r < mat.rows(); ++r)
                for (std::size_t c = 0; c < mat.cols(); ++c)
                    mat(r, c) = rng.bernoulli(0.4) ? 1.0f : 0.0f;
        };
        fill(vpos);
        fill(vneg);
        fill(hpos);
        fill(hneg);

        // Float reference: dW = Vpos^T Hpos - Vneg^T Hneg.
        Matrix want(m, n, 0.0f);
        for (std::size_t pos = 0; pos < batch; ++pos)
            for (std::size_t i = 0; i < m; ++i)
                for (std::size_t j = 0; j < n; ++j)
                    want(i, j) += vpos(pos, i) * hpos(pos, j) -
                                  vneg(pos, i) * hneg(pos, j);

        BitMatrix posT, negT, hposT, hnegT;
        linalg::packTransposed(vpos, posT);
        linalg::packTransposed(vneg, negT);
        linalg::packTransposed(hpos, hposT);
        linalg::packTransposed(hneg, hnegT);
        Matrix got(m, n);
        linalg::outerCountDiff(posT, hposT, negT, hnegT, got, 0, m);
        for (std::size_t i = 0; i < m; ++i)
            for (std::size_t j = 0; j < n; ++j)
                EXPECT_EQ(got(i, j), want(i, j))
                    << "batch " << batch << " (" << i << ", " << j << ")";

        // Bias rows: counts along the batch axis.
        std::vector<float> counts(m);
        linalg::rowCounts(posT, counts.data());
        for (std::size_t i = 0; i < m; ++i) {
            float want_i = 0.0f;
            for (std::size_t pos = 0; pos < batch; ++pos)
                want_i += vpos(pos, i);
            EXPECT_EQ(counts[i], want_i) << "batch " << batch;
        }
    }
}
