/**
 * @file
 * Tests for the BRIM transient simulator: Lyapunov descent, ground
 * states, clamping, annealing.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ising/brim.hpp"

using namespace ising::machine;
using ising::util::Rng;

namespace {

IsingModel
ferromagnet(std::size_t n, float j = 0.5f)
{
    IsingModel model(n);
    for (std::size_t a = 0; a < n; ++a)
        for (std::size_t b = a + 1; b < n; ++b)
            model.setCoupling(a, b, j);
    return model;
}

} // namespace

TEST(Brim, LyapunovDescendsWithoutNoise)
{
    Rng rng(1);
    const IsingModel model = ferromagnet(12);
    BrimConfig cfg;
    cfg.dt = 0.01;
    BrimSimulator sim(model, cfg, rng);
    double prev = sim.lyapunov();
    for (int s = 0; s < 400; ++s) {
        sim.step(0.0);
        const double cur = sim.lyapunov();
        ASSERT_LE(cur, prev + 1e-6) << "step " << s;
        prev = cur;
    }
}

TEST(Brim, RelaxReachesFerromagnetGroundState)
{
    Rng rng(2);
    const IsingModel model = ferromagnet(10);
    BrimConfig cfg;
    cfg.dt = 0.02;
    BrimSimulator sim(model, cfg, rng);
    sim.relax(1e-10, 50000);
    // All spins aligned -> minimal energy -C(10,2)*0.5.
    EXPECT_NEAR(sim.energy(), -22.5, 1e-9);
}

TEST(Brim, VoltagesSaturateNearRails)
{
    Rng rng(3);
    const IsingModel model = ferromagnet(8);
    BrimConfig cfg;
    cfg.dt = 0.02;
    BrimSimulator sim(model, cfg, rng);
    sim.relax(1e-10, 50000);
    for (double v : sim.voltages())
        EXPECT_GT(std::fabs(v), 0.8);
}

TEST(Brim, ThresholdStateIsLocalMinimum)
{
    // After relaxation, no single flip may lower the Ising energy --
    // the paper's stable-state property.
    Rng rng(4);
    IsingModel model(10);
    Rng gen(99);
    for (std::size_t a = 0; a < 10; ++a)
        for (std::size_t b = a + 1; b < 10; ++b)
            model.setCoupling(a, b,
                              static_cast<float>(gen.gaussian(0, 0.4)));
    BrimConfig cfg;
    cfg.dt = 0.01;
    BrimSimulator sim(model, cfg, rng);
    sim.relax(1e-12, 100000);
    const SpinState s = sim.spins();
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_GE(model.flipDelta(s, i), -1e-5) << "node " << i;
}

TEST(Brim, ClampHoldsNodeFixed)
{
    Rng rng(5);
    const IsingModel model = ferromagnet(6, -0.8f);
    BrimConfig cfg;
    BrimSimulator sim(model, cfg, rng);
    sim.clampNode(2, 1.0);
    for (int s = 0; s < 500; ++s)
        sim.step(0.02);
    EXPECT_DOUBLE_EQ(sim.voltages()[2], 1.0);
}

TEST(Brim, ClampSteersNeighborsInFerromagnet)
{
    Rng rng(6);
    const IsingModel model = ferromagnet(8, 0.8f);
    BrimConfig cfg;
    cfg.dt = 0.02;
    BrimSimulator sim(model, cfg, rng);
    sim.clampNode(0, 1.0);
    sim.relax(1e-10, 50000);
    // Strong ferromagnetic coupling: everything aligns with the clamp.
    for (double v : sim.voltages())
        EXPECT_GT(v, 0.5);
}

TEST(Brim, AnnealEscapesWorseStatesOnAverage)
{
    // With annealing flips the machine should end at-or-below the
    // energy of a pure relaxation from a bad start.
    IsingModel model(12);
    Rng gen(55);
    for (std::size_t a = 0; a < 12; ++a)
        for (std::size_t b = a + 1; b < 12; ++b)
            model.setCoupling(a, b,
                              static_cast<float>(gen.gaussian(0, 0.5)));
    double relaxEnergy = 0.0, annealEnergy = 0.0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
        Rng rngA(100 + t), rngB(100 + t);
        BrimConfig cfg;
        cfg.dt = 0.02;
        cfg.flipRateStart = 0.02;
        cfg.flipRateEnd = 0.0;
        BrimSimulator relaxSim(model, cfg, rngA);
        relaxSim.relax(1e-9, 3000);
        relaxEnergy += relaxSim.energy();

        BrimSimulator annealSim(model, cfg, rngB);
        annealSim.anneal(2000);
        annealSim.relax(1e-9, 3000);
        annealEnergy += annealSim.energy();
    }
    EXPECT_LE(annealEnergy / trials, relaxEnergy / trials + 0.5);
}

TEST(Brim, SetStateAndSpinsReadout)
{
    Rng rng(7);
    const IsingModel model = ferromagnet(4);
    BrimConfig cfg;
    BrimSimulator sim(model, cfg, rng);
    sim.setState({0.9, -0.3, 0.1, -1.0});
    const SpinState s = sim.spins();
    EXPECT_EQ(s[0], 1);
    EXPECT_EQ(s[1], -1);
    EXPECT_EQ(s[2], 1);
    EXPECT_EQ(s[3], -1);
}

TEST(Brim, TemperatureInjectsVariance)
{
    Rng rng(8);
    const IsingModel model = ferromagnet(6, 0.1f);
    BrimConfig hot;
    hot.temperature = 0.5;
    BrimSimulator sim(model, hot, rng);
    sim.relax(1e-12, 500);
    // With thermal noise the Lyapunov function fluctuates; successive
    // steps should not be identical.
    const auto v1 = sim.voltages();
    sim.step(0.0);
    const auto v2 = sim.voltages();
    EXPECT_NE(v1, v2);
}

/** Sweep: ground-state recovery holds across sizes. */
class BrimSizeSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BrimSizeSweep, FerromagnetAligns)
{
    const std::size_t n = GetParam();
    Rng rng(200 + n);
    const IsingModel model = ferromagnet(n, 0.6f);
    BrimConfig cfg;
    cfg.dt = 0.02;
    BrimSimulator sim(model, cfg, rng);
    sim.relax(1e-10, 50000);
    const SpinState s = sim.spins();
    for (int x : s)
        EXPECT_EQ(x, s[0]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BrimSizeSweep,
                         ::testing::Values(4, 8, 16, 32));
