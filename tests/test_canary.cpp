/**
 * @file
 * Live-canary gate tests: the seeded traffic splitter is a pure
 * function of the request seed; shadow execution never moves a
 * client-visible byte; a clean candidate auto-promotes through the
 * atomic-swap path after its clean streak; a divergent candidate is
 * quarantined with capped backoff while the incumbent (and its
 * archive) keep serving untouched; and per-request deadlines resolve
 * DEADLINE_EXCEEDED before any kernel work, at admission and at
 * flush, without perturbing the requests they were coalesced with.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "engine/promote.hpp"
#include "engine/server.hpp"
#include "rbm/serialize.hpp"
#include "util/fault.hpp"

using namespace ising;
using engine::ModelRegistry;
using engine::Op;
using engine::Request;
using engine::Response;
using engine::Server;
using engine::ServerConfig;
using engine::StatusCode;
using rbm::Checkpoint;

namespace {

namespace fs = std::filesystem;

/** Input-copying RBM (diagonal latch): near-zero reconstruction
 *  error, so it is distinguishable from a model that ignores input. */
rbm::Rbm
copyRbm(std::size_t dim, float w = 16.0f)
{
    rbm::Rbm model(dim, dim);
    for (std::size_t i = 0; i < dim; ++i) {
        model.weights()(i, i) = w;
        model.visibleBias()[i] = -w / 2;
        model.hiddenBias()[i] = -w / 2;
    }
    return model;
}

/** Zero-weight model: reconstructs 0.5 regardless of input. */
rbm::Rbm
blankRbm(std::size_t dim)
{
    return rbm::Rbm(dim, dim);
}

Checkpoint
makeCkpt(rbm::Rbm model, int epoch)
{
    Checkpoint ckpt;
    ckpt.meta.name = "canary";
    ckpt.meta.backend = "cd";
    ckpt.meta.seed = 5;
    ckpt.meta.epoch = epoch;
    ckpt.model = std::move(model);
    return ckpt;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

class CanaryGateTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        util::FaultInjector::instance().reset();
        dir_ = (fs::temp_directory_path() /
                ("isingrbm_test_canary_" + std::to_string(::getpid()) +
                 "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void
    TearDown() override
    {
        util::FaultInjector::instance().reset();
        fs::remove_all(dir_);
    }

    std::string
    path(const std::string &file) const
    {
        return (fs::path(dir_) / file).string();
    }

    /** The fixed live corpus: reconstruction requests with distinct
     *  seeds (distinct seeds = distinct splitter draws). */
    std::vector<Request>
    corpus(std::size_t n, std::size_t dim) const
    {
        std::vector<Request> out;
        for (std::size_t q = 0; q < n; ++q) {
            Request req;
            req.model = "m";
            req.op = Op::Reconstruct;
            req.seed = 1000 + q;
            req.input = engine::canaryProbe(2, dim, req.seed);
            out.push_back(std::move(req));
        }
        return out;
    }

    std::string dir_;
};

bool
sameBytes(const linalg::Matrix &a, const linalg::Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(float)) == 0;
}

} // namespace

// ------------------------------------------------- traffic splitter

TEST(CanarySplitter, IsAPureFunctionOfTheSeed)
{
    // Edges: 0 never shadows, 1 always does, out-of-range clamps.
    for (const std::uint64_t seed : {0ull, 1ull, 77ull, ~0ull}) {
        EXPECT_FALSE(engine::canaryShadowSelected(seed, 0.0));
        EXPECT_FALSE(engine::canaryShadowSelected(seed, -0.5));
        EXPECT_TRUE(engine::canaryShadowSelected(seed, 1.0));
        EXPECT_TRUE(engine::canaryShadowSelected(seed, 2.0));
    }
    // Deterministic: the same (seed, fraction) always answers the
    // same -- the property that makes the shadow set independent of
    // arrival interleaving, coalescing shape and worker count.
    for (std::uint64_t seed = 0; seed < 256; ++seed)
        EXPECT_EQ(engine::canaryShadowSelected(seed, 0.3),
                  engine::canaryShadowSelected(seed, 0.3));
    // Monotone in the fraction: a request shadowed at f stays
    // shadowed at every f' > f (raising the dial only adds traffic).
    for (std::uint64_t seed = 0; seed < 256; ++seed) {
        if (engine::canaryShadowSelected(seed, 0.2)) {
            EXPECT_TRUE(engine::canaryShadowSelected(seed, 0.6))
                << seed;
        }
    }
    // The split hits the dialed fraction on a large seed population.
    std::size_t picked = 0;
    for (std::uint64_t seed = 0; seed < 20000; ++seed)
        picked += engine::canaryShadowSelected(seed, 0.25);
    EXPECT_GT(picked, 20000 * 0.20);
    EXPECT_LT(picked, 20000 * 0.30);
}

// ---------------------------------------------- promote / quarantine

TEST_F(CanaryGateTest, CleanCandidateAutoPromotesAndBytesHold)
{
    ModelRegistry registry(dir_);
    registry.put("m", makeCkpt(copyRbm(6), 1));

    // Canary-off baseline first, while the archive is pristine.
    const auto live = corpus(8, 6);
    std::vector<Response> expected;
    {
        ModelRegistry fresh(dir_);
        Server plain(fresh);
        expected = plain.serve(live);
    }

    // The candidate carries the incumbent's exact weights (epoch 2),
    // so every shadow diverges by 0.0 -- and served bytes stay
    // byte-stable across the auto-promote itself.
    const std::string cand = path("cand.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(6), 2), cand);
    ASSERT_TRUE(registry.stageCandidate("m", cand).ok());
    ASSERT_TRUE(registry.candidate("m") != nullptr);
    EXPECT_EQ(registry.candidatePath("m"), cand);

    ServerConfig config;
    config.canary.model = "m";
    config.canary.fraction = 1.0;
    config.canary.minShadows = 4;
    Server server(registry, config);

    std::vector<Response> got;
    for (const Request &req : live)
        got.push_back(std::move(server.serve({req}).front()));
    for (std::size_t q = 0; q < live.size(); ++q) {
        ASSERT_TRUE(got[q].status.ok()) << q;
        EXPECT_TRUE(sameBytes(got[q].output, expected[q].output))
            << "request " << q << " moved bytes under the canary";
    }

    const Server::Stats stats = server.stats();
    EXPECT_GE(stats.canaryShadows, config.canary.minShadows);
    EXPECT_EQ(stats.canaryQuarantines, 0u);
    EXPECT_EQ(stats.canaryPromotions, 1u);
    EXPECT_EQ(stats.canaryState, 3u);  // promoted
    EXPECT_EQ(stats.canaryLastDivergence, 0.0);
    EXPECT_GE(stats.promotions, 1u);

    // The swap went through the atomic publish: the archive verifies,
    // a fresh registry loads the candidate, and the staged slot is
    // cleared.
    auto now = registry.tryGet("m");
    ASSERT_TRUE(now.ok());
    EXPECT_EQ(now.value()->meta().epoch, 2);
    EXPECT_TRUE(registry.candidate("m") == nullptr);
    ModelRegistry reopened(dir_);
    auto cold = reopened.tryGet("m");
    ASSERT_TRUE(cold.ok());
    EXPECT_EQ(cold.value()->meta().epoch, 2);
}

TEST_F(CanaryGateTest, DivergentCandidateIsQuarantinedNotPromoted)
{
    ModelRegistry registry(dir_);
    registry.put("m", makeCkpt(copyRbm(6), 1));
    const std::string archive = registry.pathFor("m");
    const std::string before = slurp(archive);

    const std::string cand = path("blank.ckpt");
    rbm::saveCheckpoint(makeCkpt(blankRbm(6), 2), cand);
    ASSERT_TRUE(registry.stageCandidate("m", cand).ok());

    const auto live = corpus(8, 6);
    std::vector<Response> expected;
    {
        ModelRegistry fresh(dir_);
        Server plain(fresh);
        expected = plain.serve(live);
    }

    ServerConfig config;
    config.canary.model = "m";
    config.canary.fraction = 1.0;
    config.canary.minShadows = 2;
    config.canary.maxDivergence = 0.05;
    config.canary.quarantineMinMs = 60000;  // stay quarantined
    Server server(registry, config);

    std::vector<Response> got;
    for (const Request &req : live)
        got.push_back(std::move(server.serve({req}).front()));
    for (std::size_t q = 0; q < live.size(); ++q) {
        ASSERT_TRUE(got[q].status.ok()) << q;
        EXPECT_TRUE(sameBytes(got[q].output, expected[q].output))
            << "request " << q
            << ": a divergent shadow moved client bytes";
    }

    const Server::Stats stats = server.stats();
    EXPECT_GE(stats.canaryShadows, 1u);
    EXPECT_GE(stats.canaryDivergenceBreaches, 1u);
    EXPECT_EQ(stats.canaryQuarantines, 1u);
    EXPECT_EQ(stats.canaryPromotions, 0u);
    EXPECT_EQ(stats.canaryState, 2u);  // quarantined (long backoff)
    EXPECT_GT(stats.canaryLastDivergence, 0.05);
    EXPECT_GE(stats.rollbacks, 1u);

    // The incumbent archive is byte-for-byte untouched and the
    // incumbent keeps serving.
    EXPECT_EQ(slurp(archive), before);
    auto still = registry.tryGet("m");
    ASSERT_TRUE(still.ok());
    EXPECT_EQ(still.value()->meta().epoch, 1);
}

TEST_F(CanaryGateTest, QuarantineBacksOffThenResumesShadowing)
{
    ModelRegistry registry(dir_);
    registry.put("m", makeCkpt(copyRbm(6), 1));
    const std::string cand = path("blank.ckpt");
    rbm::saveCheckpoint(makeCkpt(blankRbm(6), 2), cand);
    ASSERT_TRUE(registry.stageCandidate("m", cand).ok());

    ServerConfig config;
    config.canary.model = "m";
    config.canary.fraction = 1.0;
    config.canary.maxDivergence = 0.05;
    config.canary.quarantineMinMs = 1;
    config.canary.quarantineMaxMs = 2;
    Server server(registry, config);

    const auto live = corpus(6, 6);
    server.serve({live[0]});
    ASSERT_EQ(server.stats().canaryQuarantines, 1u);
    const std::size_t shadowsAfterFirst = server.stats().canaryShadows;

    // Traffic inside the backoff window is not shadowed...
    server.serve({live[1]});
    // ...but once the window lapses shadowing resumes (with a zeroed
    // streak) and the still-divergent candidate re-breaches.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server.serve({live[2]});
    const Server::Stats stats = server.stats();
    EXPECT_GT(stats.canaryShadows, shadowsAfterFirst);
    EXPECT_GE(stats.canaryQuarantines, 2u);
    EXPECT_EQ(stats.canaryPromotions, 0u);
}

TEST_F(CanaryGateTest, ObserveOnlyGateNeverPromotes)
{
    ModelRegistry registry(dir_);
    registry.put("m", makeCkpt(copyRbm(6), 1));
    const std::string cand = path("cand.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(6), 2), cand);
    ASSERT_TRUE(registry.stageCandidate("m", cand).ok());

    ServerConfig config;
    config.canary.model = "m";
    config.canary.fraction = 1.0;
    config.canary.minShadows = 2;
    config.canary.autoPromote = false;
    Server server(registry, config);

    for (const Request &req : corpus(6, 6))
        ASSERT_TRUE(server.serve({req}).front().status.ok());

    const Server::Stats stats = server.stats();
    EXPECT_GE(stats.canaryCleanStreak, config.canary.minShadows);
    EXPECT_EQ(stats.canaryPromotions, 0u);
    auto still = registry.tryGet("m");
    ASSERT_TRUE(still.ok());
    EXPECT_EQ(still.value()->meta().epoch, 1);
    EXPECT_TRUE(registry.candidate("m") != nullptr);  // still staged
}

TEST_F(CanaryGateTest, PartialFractionShadowsOnlySelectedSeeds)
{
    ModelRegistry registry(dir_);
    registry.put("m", makeCkpt(copyRbm(6), 1));
    const std::string cand = path("cand.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(6), 2), cand);
    ASSERT_TRUE(registry.stageCandidate("m", cand).ok());

    const double fraction = 0.4;
    const auto live = corpus(16, 6);
    std::size_t selected = 0;
    for (const Request &req : live)
        selected += engine::canaryShadowSelected(req.seed, fraction);
    ASSERT_GT(selected, 0u);
    ASSERT_LT(selected, live.size());

    ServerConfig config;
    config.canary.model = "m";
    config.canary.fraction = fraction;
    config.canary.minShadows = live.size() + 1;  // never promotes here
    Server server(registry, config);
    for (const Request &req : live)
        ASSERT_TRUE(server.serve({req}).front().status.ok());

    // Exactly the splitter-selected requests were shadowed: the gate
    // and the pure function agree request for request.
    EXPECT_EQ(server.stats().canaryShadows, selected);
    EXPECT_EQ(server.stats().canaryPromotions, 0u);
}

// ----------------------------------------------- staging validation

TEST_F(CanaryGateTest, StageCandidateRejectsTornAndMismatchedFiles)
{
    ModelRegistry registry(dir_);
    registry.put("m", makeCkpt(copyRbm(6), 1));

    // Torn candidate bytes never reach the gate.
    const std::string torn = path("torn.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(6), 2), torn);
    {
        const std::string bytes = slurp(torn);
        std::ofstream os(torn, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size() / 2));
    }
    EXPECT_FALSE(registry.stageCandidate("m", torn).ok());
    EXPECT_TRUE(registry.candidate("m") == nullptr);

    // An input-dim mismatch against the resolvable incumbent is
    // rejected before any traffic could shadow through it.
    const std::string wrong = path("wrong.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(7), 2), wrong);
    EXPECT_FALSE(registry.stageCandidate("m", wrong).ok());
    EXPECT_TRUE(registry.candidate("m") == nullptr);

    // Restaging replaces; clearing drops.
    const std::string good = path("good.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(6), 2), good);
    ASSERT_TRUE(registry.stageCandidate("m", good).ok());
    ASSERT_TRUE(registry.candidate("m") != nullptr);
    registry.clearCandidate("m");
    EXPECT_TRUE(registry.candidate("m") == nullptr);
}

TEST_F(CanaryGateTest, PromoteStagedRefusesACandidateChangedOnDisk)
{
    ModelRegistry registry(dir_);
    registry.put("m", makeCkpt(copyRbm(6), 1));
    const std::string cand = path("cand.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(6), 2), cand);
    ASSERT_TRUE(registry.stageCandidate("m", cand).ok());

    // The file is overwritten after staging (a trainer lapping the
    // gate): publishing the *staged* bytes would resurrect a model
    // nobody validated, so the promote must refuse and unstage.
    rbm::saveCheckpoint(makeCkpt(blankRbm(6), 3), cand);
    auto result = registry.promoteStaged("m");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::FailedPrecondition);
    EXPECT_TRUE(registry.candidate("m") == nullptr);
    auto still = registry.tryGet("m");
    ASSERT_TRUE(still.ok());
    EXPECT_EQ(still.value()->meta().epoch, 1);
}

// ----------------------------------------------------- deadlines

TEST_F(CanaryGateTest, ExpiredAtSubmitSkipsAllKernelWork)
{
    ModelRegistry registry(dir_);
    registry.put("m", makeCkpt(copyRbm(6), 1));
    Server server(registry);

    Request req;
    req.model = "m";
    req.op = Op::Reconstruct;
    req.seed = 9;
    req.input = engine::canaryProbe(2, 6, 9);
    req.deadlineNs = 1;  // steady-clock epoch: expired long ago
    const Response res = std::move(server.serve({req}).front());
    EXPECT_EQ(res.status.code(), StatusCode::DeadlineExceeded);
    EXPECT_EQ(res.output.rows(), 0u);

    const Server::Stats stats = server.stats();
    EXPECT_EQ(stats.deadlineExpired, 1u);
    EXPECT_EQ(stats.kernelBatches, 0u);  // no kernel ever ran
    EXPECT_EQ(stats.rows, 0u);
    EXPECT_EQ(stats.rejected, 0u);  // expiry is not a malformed request
}

TEST_F(CanaryGateTest, ExpiryInQueueDoesNotPerturbCoflushedBytes)
{
    ModelRegistry registry(dir_);
    registry.put("m", makeCkpt(copyRbm(6), 1));

    Request keep;
    keep.model = "m";
    keep.op = Op::Reconstruct;
    keep.seed = 21;
    keep.input = engine::canaryProbe(3, 6, 21);

    Server clean(registry);
    const Response alone = std::move(clean.serve({keep}).front());
    ASSERT_TRUE(alone.status.ok());

    Server server(registry);
    auto keepFuture = server.submit(keep);
    Request doomed = keep;
    doomed.seed = 22;
    doomed.deadlineNs = engine::steadyNowNs() + 1000000;  // 1 ms
    auto doomedFuture = server.submit(std::move(doomed));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server.flush();

    const Response kept = keepFuture.get();
    const Response expired = doomedFuture.get();
    EXPECT_EQ(expired.status.code(), StatusCode::DeadlineExceeded);
    ASSERT_TRUE(kept.status.ok());
    EXPECT_TRUE(sameBytes(kept.output, alone.output));
    EXPECT_EQ(server.stats().deadlineExpired, 1u);

    // A generous deadline, by contrast, rides through untouched.
    Request relaxed = keep;
    relaxed.deadlineNs =
        engine::steadyNowNs() + 60ull * 1000 * 1000 * 1000;
    const Response easy =
        std::move(server.serve({std::move(relaxed)}).front());
    ASSERT_TRUE(easy.status.ok());
    EXPECT_TRUE(sameBytes(easy.output, alone.output));
}
