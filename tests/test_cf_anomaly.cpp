/**
 * @file
 * Tests for the CF-RBM recommendation model and anomaly scoring.
 */

#include <gtest/gtest.h>

#include "data/fraud.hpp"
#include "data/ratings.hpp"
#include "eval/metrics.hpp"
#include "rbm/anomaly.hpp"
#include "rbm/cd_trainer.hpp"
#include "rbm/cf_rbm.hpp"

using namespace ising;
using util::Rng;

namespace {

data::RatingData
smallCorpus(std::uint64_t seed)
{
    data::RatingStyle style;
    style.numUsers = 120;
    style.numItems = 40;
    style.density = 0.25;
    return data::makeRatings(style, seed);
}

} // namespace

TEST(CfRbm, PredictionsInStarRange)
{
    Rng rng(1);
    const auto corpus = smallCorpus(2);
    rbm::CfRbm model(corpus.numUsers, 5, 16);
    model.initRandom(rng);
    rbm::CfConfig cfg;
    cfg.epochs = 2;
    model.train(corpus, cfg, rng);
    for (int i = 0; i < 5; ++i) {
        const double p = model.predict(corpus, i * 7 % corpus.numUsers,
                                       i % corpus.numItems);
        EXPECT_GE(p, 1.0);
        EXPECT_LE(p, 5.0);
    }
}

TEST(CfRbm, BeatsMidpointBaseline)
{
    Rng rng(2);
    const auto corpus = smallCorpus(3);
    rbm::CfRbm model(corpus.numUsers, 5, 24);
    model.initFromData(corpus, rng);
    rbm::CfConfig cfg;
    cfg.epochs = 15;
    cfg.learningRate = 0.005;
    model.train(corpus, cfg, rng);
    const double mae = model.testMae(corpus);

    // Constant prediction of 3 stars.
    double baseline = 0.0;
    for (const auto &r : corpus.test)
        baseline += std::abs(3.0 - r.stars);
    baseline /= corpus.test.size();
    EXPECT_LT(mae, baseline);
}

TEST(CfRbm, TrainingReducesMae)
{
    // Training should improve (or at least not hurt) a randomly
    // initialized model substantially.
    Rng rng(3);
    const auto corpus = smallCorpus(4);
    rbm::CfRbm model(corpus.numUsers, 5, 24);
    model.initRandom(rng);
    const double before = model.testMae(corpus);
    rbm::CfConfig cfg;
    cfg.epochs = 20;
    cfg.learningRate = 0.01;
    model.train(corpus, cfg, rng);
    EXPECT_LT(model.testMae(corpus), before + 0.02);
}

TEST(CfRbm, DataInitBeatsRandomInit)
{
    Rng rng(31);
    const auto corpus = smallCorpus(4);
    rbm::CfRbm randomInit(corpus.numUsers, 5, 24);
    randomInit.initRandom(rng);
    rbm::CfRbm dataInit(corpus.numUsers, 5, 24);
    dataInit.initFromData(corpus, rng);
    EXPECT_LT(dataInit.testMae(corpus), randomInit.testMae(corpus));
}

TEST(CfRbm, HardwareModeStillLearns)
{
    Rng rng(4);
    const auto corpus = smallCorpus(5);
    rbm::CfRbm model(corpus.numUsers, 5, 24);
    model.initFromData(corpus, rng);
    rbm::CfConfig cfg;
    cfg.epochs = 15;
    cfg.learningRate = 0.005;
    rbm::CfHardwareMode hw;
    hw.noise = {0.05, 0.05};
    cfg.hardware = hw;
    model.train(corpus, cfg, rng);
    double baseline = 0.0;
    for (const auto &r : corpus.test)
        baseline += std::abs(3.0 - r.stars);
    baseline /= corpus.test.size();
    EXPECT_LT(model.testMae(corpus), baseline);
}

TEST(CfRbm, HeavyNoiseDegradesButNotCatastrophically)
{
    const auto corpus = smallCorpus(6);
    auto maeWithNoise = [&](double rms) {
        Rng rng(5);
        rbm::CfRbm model(corpus.numUsers, 5, 24);
        model.initFromData(corpus, rng);
        rbm::CfConfig cfg;
        cfg.epochs = 10;
        cfg.learningRate = 0.005;
        rbm::CfHardwareMode hw;
        hw.noise = {rms, rms};
        cfg.hardware = hw;
        model.train(corpus, cfg, rng);
        return model.testMae(corpus);
    };
    const double clean = maeWithNoise(0.0);
    const double noisy = maeWithNoise(0.3);
    EXPECT_LT(noisy, clean + 0.4);  // Fig. 9: small spread
}

TEST(Anomaly, ReconstructionErrorSeparatesFraud)
{
    // The paper's cited fraud pipeline (Pumsirirat & Yan) scores by
    // RBM reconstruction error; that is what Fig. 10 measures here.
    Rng rng(6);
    data::FraudStyle style;
    style.fraudRate = 0.02;
    const data::Dataset all = data::makeFraud(style, 3000, 7);

    // Train on (mostly legitimate) data.
    rbm::Rbm model(all.dim(), 10);
    model.initRandom(rng);
    rbm::CdConfig cfg;
    cfg.learningRate = 0.05;
    cfg.batchSize = 50;
    rbm::CdTrainer trainer(model, cfg, rng);
    for (int e = 0; e < 15; ++e)
        trainer.trainEpoch(all);

    const auto scores = rbm::reconstructionScores(model, all);
    const double auc = eval::rocAuc(scores, all.labels);
    EXPECT_GT(auc, 0.90);  // paper reports ~0.96 on the real corpus

    // Free-energy scoring is the weaker alternative on continuous
    // features but must stay at or above chance.
    const auto fe = rbm::anomalyScores(model, all);
    EXPECT_GT(eval::rocAuc(fe, all.labels), 0.45);
}

TEST(Anomaly, ScoresSizedToDataset)
{
    Rng rng(7);
    const data::Dataset ds = data::makeFraud({}, 100, 8);
    rbm::Rbm model(ds.dim(), 10);
    model.initRandom(rng);
    EXPECT_EQ(rbm::anomalyScores(model, ds).size(), 100u);
    EXPECT_EQ(rbm::reconstructionScores(model, ds).size(), 100u);
}

TEST(Anomaly, ReconstructionScoreAlsoSeparates)
{
    Rng rng(8);
    data::FraudStyle style;
    style.fraudRate = 0.05;
    const data::Dataset all = data::makeFraud(style, 2000, 9);
    rbm::Rbm model(all.dim(), 10);
    model.initRandom(rng);
    rbm::CdConfig cfg;
    cfg.learningRate = 0.05;
    cfg.batchSize = 50;
    rbm::CdTrainer trainer(model, cfg, rng);
    for (int e = 0; e < 15; ++e)
        trainer.trainEpoch(all);
    const auto scores = rbm::reconstructionScores(model, all);
    EXPECT_GT(eval::rocAuc(scores, all.labels), 0.7);
}
