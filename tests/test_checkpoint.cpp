/**
 * @file
 * Checkpoint v2 tests: bit-exact round-trips for every model family,
 * v1 -> v2 migration, and corrupted-archive rejection.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "rbm/serialize.hpp"

using namespace ising;
using rbm::Checkpoint;
using rbm::ModelFamily;
using util::Rng;

namespace {

rbm::Rbm
randomRbm(std::size_t m, std::size_t n, std::uint64_t seed)
{
    rbm::Rbm model(m, n);
    Rng rng(seed);
    model.initRandom(rng, 0.5f);
    for (std::size_t i = 0; i < m; ++i)
        model.visibleBias()[i] = static_cast<float>(rng.gaussian(0, 1));
    for (std::size_t j = 0; j < n; ++j)
        model.hiddenBias()[j] = static_cast<float>(rng.gaussian(0, 1));
    return model;
}

Checkpoint
roundTrip(const Checkpoint &ckpt)
{
    std::stringstream ss;
    rbm::saveCheckpoint(ckpt, ss);
    return rbm::loadCheckpoint(ss);
}

void
expectRbmEq(const rbm::Rbm &a, const rbm::Rbm &b)
{
    EXPECT_EQ(a.weights(), b.weights());
    EXPECT_EQ(a.visibleBias(), b.visibleBias());
    EXPECT_EQ(a.hiddenBias(), b.hiddenBias());
}

} // namespace

TEST(Checkpoint, RbmRoundTripIsExactWithMeta)
{
    Checkpoint ckpt;
    ckpt.meta.name = "unit-rbm";
    ckpt.meta.backend = "bgf";
    ckpt.meta.seed = 0xDEADBEEFCAFEull;
    ckpt.meta.epoch = 17;
    ckpt.model = randomRbm(9, 5, 1);

    const Checkpoint back = roundTrip(ckpt);
    ASSERT_EQ(back.family(), ModelFamily::Rbm);
    EXPECT_EQ(back.meta.name, "unit-rbm");
    EXPECT_EQ(back.meta.backend, "bgf");
    EXPECT_EQ(back.meta.seed, 0xDEADBEEFCAFEull);
    EXPECT_EQ(back.meta.epoch, 17);
    expectRbmEq(std::get<rbm::Rbm>(back.model),
                std::get<rbm::Rbm>(ckpt.model));
}

TEST(Checkpoint, EmptyMetaRoundTrips)
{
    Checkpoint ckpt;
    ckpt.model = randomRbm(3, 2, 2);
    const Checkpoint back = roundTrip(ckpt);
    EXPECT_EQ(back.meta.name, "");
    EXPECT_EQ(back.meta.backend, "");
    EXPECT_EQ(back.meta.seed, 0u);
    EXPECT_EQ(back.meta.epoch, 0);
    EXPECT_EQ(back.meta.earlyStopEpoch, -1);
}

TEST(Checkpoint, EarlyStopEpochRoundTrips)
{
    Checkpoint ckpt;
    ckpt.model = randomRbm(3, 2, 2);
    ckpt.meta.epoch = 4;
    ckpt.meta.earlyStopEpoch = 4;
    const Checkpoint back = roundTrip(ckpt);
    EXPECT_EQ(back.meta.epoch, 4);
    EXPECT_EQ(back.meta.earlyStopEpoch, 4);
    // Never-stopped archives must not carry the key at all (readers
    // predating it would still ignore it, but byte-stability matters
    // for the list --verify round-trip diff).
    Checkpoint plain;
    plain.model = randomRbm(3, 2, 2);
    std::stringstream ss;
    rbm::saveCheckpoint(plain, ss);
    EXPECT_EQ(ss.str().find("early_stop"), std::string::npos);
}

TEST(Checkpoint, PreservesExtremeValues)
{
    rbm::Rbm model(2, 2);
    model.weights()(0, 0) = 1.0e-30f;
    model.weights()(0, 1) = -3.4e37f;
    model.weights()(1, 0) = 0.1f;  // not exactly representable
    Checkpoint ckpt;
    ckpt.model = model;
    const Checkpoint back = roundTrip(ckpt);
    EXPECT_EQ(std::get<rbm::Rbm>(back.model).weights(), model.weights());
}

TEST(Checkpoint, ClassRbmRoundTrip)
{
    Rng rng(3);
    rbm::ClassRbm model(12, 4, 6);
    model.initRandom(rng, 0.3f);
    for (std::size_t i = 0; i < model.joint().numVisible(); ++i)
        model.joint().visibleBias()[i] =
            static_cast<float>(rng.gaussian(0, 1));

    Checkpoint ckpt;
    ckpt.meta.backend = "cd";
    ckpt.model = model;
    const Checkpoint back = roundTrip(ckpt);
    ASSERT_EQ(back.family(), ModelFamily::ClassRbm);
    const auto &restored = std::get<rbm::ClassRbm>(back.model);
    EXPECT_EQ(restored.numPixels(), 12u);
    EXPECT_EQ(restored.numClasses(), 4);
    expectRbmEq(restored.joint(), model.joint());
}

TEST(Checkpoint, CfRbmRoundTrip)
{
    Rng rng(4);
    rbm::CfRbm model(7, 5, 9);
    model.initRandom(rng, 0.4f);
    for (std::size_t i = 0; i < model.visibleBias().size(); ++i)
        model.visibleBias()[i] = static_cast<float>(rng.gaussian(0, 1));
    for (std::size_t j = 0; j < model.hiddenBias().size(); ++j)
        model.hiddenBias()[j] = static_cast<float>(rng.gaussian(0, 1));

    Checkpoint ckpt;
    ckpt.model = model;
    const Checkpoint back = roundTrip(ckpt);
    ASSERT_EQ(back.family(), ModelFamily::CfRbm);
    const auto &restored = std::get<rbm::CfRbm>(back.model);
    EXPECT_EQ(restored.numUsers(), 7);
    EXPECT_EQ(restored.numStars(), 5);
    EXPECT_EQ(restored.numHidden(), 9);
    EXPECT_EQ(restored.weights(), model.weights());
    EXPECT_EQ(restored.visibleBias(), model.visibleBias());
    EXPECT_EQ(restored.hiddenBias(), model.hiddenBias());
}

TEST(Checkpoint, ConvRbmRoundTrip)
{
    rbm::ConvRbmConfig cfg;
    cfg.imageSide = 10;
    cfg.filterSide = 3;
    cfg.numFilters = 4;
    cfg.poolGrid = 2;
    cfg.learningRate = 0.034;
    cfg.sparsityTarget = 0.125;
    rbm::ConvRbm model(cfg);
    Rng rng(5);
    model.initRandom(rng, 0.2f);
    for (std::size_t k = 0; k < model.hiddenBias().size(); ++k)
        model.hiddenBias()[k] = static_cast<float>(rng.gaussian(0, 1));
    model.setVisibleBias(-0.375f);

    Checkpoint ckpt;
    ckpt.model = model;
    const Checkpoint back = roundTrip(ckpt);
    ASSERT_EQ(back.family(), ModelFamily::ConvRbm);
    const auto &restored = std::get<rbm::ConvRbm>(back.model);
    EXPECT_EQ(restored.config().imageSide, cfg.imageSide);
    EXPECT_EQ(restored.config().numFilters, cfg.numFilters);
    EXPECT_DOUBLE_EQ(restored.config().learningRate, cfg.learningRate);
    EXPECT_DOUBLE_EQ(restored.config().sparsityTarget,
                     cfg.sparsityTarget);
    EXPECT_EQ(restored.filters(), model.filters());
    EXPECT_EQ(restored.hiddenBias(), model.hiddenBias());
    EXPECT_EQ(restored.visibleBias(), model.visibleBias());

    // Behavioral equality: identical pooled features on a probe image.
    std::vector<float> image(cfg.imageSide * cfg.imageSide);
    for (float &p : image)
        p = rng.bernoulli(0.4) ? 1.0f : 0.0f;
    std::vector<float> a(model.featureDim()), b(model.featureDim());
    model.features(image.data(), a.data());
    restored.features(image.data(), b.data());
    EXPECT_EQ(a, b);
}

TEST(Checkpoint, DbnRoundTripPreservesStack)
{
    Rng rng(6);
    rbm::Dbn stack({10, 6, 3});
    stack.initRandom(rng, 0.4f);
    Checkpoint ckpt;
    ckpt.model = stack;
    const Checkpoint back = roundTrip(ckpt);
    ASSERT_EQ(back.family(), ModelFamily::Dbn);
    const auto &restored = std::get<rbm::Dbn>(back.model);
    ASSERT_EQ(restored.numLayers(), 2u);
    expectRbmEq(restored.layer(0), stack.layer(0));
    expectRbmEq(restored.layer(1), stack.layer(1));
}

TEST(Checkpoint, DbmRoundTrip)
{
    Rng rng(7);
    rbm::Dbm model(8, 5, 3);
    model.initRandom(rng, 0.3f);
    for (std::size_t i = 0; i < model.numVisible(); ++i)
        model.visibleBias()[i] = static_cast<float>(rng.gaussian(0, 1));
    for (std::size_t j = 0; j < model.hidden1(); ++j)
        model.hidden1Bias()[j] = static_cast<float>(rng.gaussian(0, 1));
    for (std::size_t k = 0; k < model.hidden2(); ++k)
        model.hidden2Bias()[k] = static_cast<float>(rng.gaussian(0, 1));

    Checkpoint ckpt;
    ckpt.model = model;
    const Checkpoint back = roundTrip(ckpt);
    ASSERT_EQ(back.family(), ModelFamily::Dbm);
    const auto &restored = std::get<rbm::Dbm>(back.model);
    EXPECT_EQ(restored.w1(), model.w1());
    EXPECT_EQ(restored.w2(), model.w2());
    EXPECT_EQ(restored.visibleBias(), model.visibleBias());
    EXPECT_EQ(restored.hidden1Bias(), model.hidden1Bias());
    EXPECT_EQ(restored.hidden2Bias(), model.hidden2Bias());
}

TEST(Checkpoint, V1RbmFileStillLoads)
{
    const rbm::Rbm model = randomRbm(6, 4, 8);
    std::stringstream ss;
    rbm::saveRbm(model, ss);  // legacy writer
    const Checkpoint back = rbm::loadCheckpoint(ss);
    ASSERT_EQ(back.family(), ModelFamily::Rbm);
    expectRbmEq(std::get<rbm::Rbm>(back.model), model);
    EXPECT_EQ(back.meta.name, "");  // migrated with default meta
}

TEST(Checkpoint, V1DbnFileStillLoads)
{
    Rng rng(9);
    rbm::Dbn stack({7, 4, 2});
    stack.initRandom(rng, 0.4f);
    std::stringstream ss;
    rbm::saveDbn(stack, ss);  // legacy writer
    const Checkpoint back = rbm::loadCheckpoint(ss);
    ASSERT_EQ(back.family(), ModelFamily::Dbn);
    const auto &restored = std::get<rbm::Dbn>(back.model);
    ASSERT_EQ(restored.numLayers(), 2u);
    expectRbmEq(restored.layer(0), stack.layer(0));
    expectRbmEq(restored.layer(1), stack.layer(1));
}

TEST(Checkpoint, TrainStateSectionRoundTripsExactly)
{
    Checkpoint ckpt;
    ckpt.model = randomRbm(5, 4, 31);
    rbm::TrainState state;
    state.setCounter("cd.updates", 17);
    state.setCounter("cd.next_particle", 3);
    linalg::Matrix particles(6, 4);
    Rng rng(5);
    for (std::size_t i = 0; i < particles.size(); ++i)
        particles.data()[i] = rng.bernoulli(0.5) ? 1.0f : 0.0f;
    state.setTensor("cd.particles", particles);
    ckpt.train = std::move(state);

    const Checkpoint back = roundTrip(ckpt);
    ASSERT_TRUE(back.train.has_value());
    const std::uint64_t *updates = back.train->counter("cd.updates");
    ASSERT_NE(updates, nullptr);
    EXPECT_EQ(*updates, 17u);
    const linalg::Matrix *tensor = back.train->tensor("cd.particles");
    ASSERT_NE(tensor, nullptr);
    ASSERT_EQ(tensor->rows(), 6u);
    ASSERT_EQ(tensor->cols(), 4u);
    for (std::size_t i = 0; i < tensor->size(); ++i)
        EXPECT_EQ(tensor->data()[i], particles.data()[i]);
    EXPECT_EQ(back.train->counter("missing"), nullptr);
    EXPECT_EQ(back.train->tensor("missing"), nullptr);
}

TEST(Checkpoint, ArchiveWithoutTrainSectionLoadsWithEmptyState)
{
    Checkpoint ckpt;
    ckpt.model = randomRbm(3, 3, 8);
    const Checkpoint back = roundTrip(ckpt);
    EXPECT_FALSE(back.train.has_value());
}

TEST(Checkpoint, UnknownTrailingSectionsAreSkipped)
{
    Checkpoint ckpt;
    ckpt.model = randomRbm(3, 3, 9);
    ckpt.meta.seed = 5;
    std::stringstream ss;
    rbm::saveCheckpoint(ckpt, ss);
    std::string text = ss.str();
    // A future writer appends a section this reader knows nothing
    // about; the payload must be skipped, not fatal.
    const auto at = text.find("end checkpoint");
    ASSERT_NE(at, std::string::npos);
    text.insert(at, "section telemetry\n1 2 3 some tokens\n"
                    "end telemetry\n");
    std::stringstream extended(text);
    const Checkpoint back = rbm::loadCheckpoint(extended);
    EXPECT_EQ(back.meta.seed, 5u);
    EXPECT_FALSE(back.train.has_value());
}

TEST(CheckpointDeathTest, RejectsUnterminatedUnknownSection)
{
    Checkpoint ckpt;
    ckpt.model = randomRbm(3, 3, 9);
    std::stringstream ss;
    rbm::saveCheckpoint(ckpt, ss);
    std::string text = ss.str();
    const auto at = text.find("end checkpoint");
    ASSERT_NE(at, std::string::npos);
    text = text.substr(0, at) + "section telemetry\n1 2 3\n";
    std::stringstream bad(text);
    EXPECT_EXIT(rbm::loadCheckpoint(bad), testing::ExitedWithCode(1),
                "unterminated section");
}

TEST(CheckpointDeathTest, RejectsUnknownMagic)
{
    std::stringstream ss("not-a-checkpoint v9\n1 1\n0\n0\n0\n");
    EXPECT_EXIT(rbm::loadCheckpoint(ss), testing::ExitedWithCode(1),
                "serialize");
}

TEST(CheckpointDeathTest, RejectsUnknownFamily)
{
    std::stringstream ss("isingrbm-checkpoint v2\nfamily warp_core\n");
    EXPECT_EXIT(rbm::loadCheckpoint(ss), testing::ExitedWithCode(1),
                "unknown model family");
}

TEST(CheckpointDeathTest, RejectsTruncatedPayload)
{
    Checkpoint ckpt;
    ckpt.model = randomRbm(5, 4, 11);
    std::stringstream ss;
    rbm::saveCheckpoint(ckpt, ss);
    // Drop the last 40 characters: the payload tail and trailers.
    const std::string text = ss.str();
    std::stringstream cut(text.substr(0, text.size() - 40));
    EXPECT_EXIT(rbm::loadCheckpoint(cut), testing::ExitedWithCode(1),
                "serialize");
}

TEST(CheckpointDeathTest, RejectsHostileDimensions)
{
    // "-1" wraps to ~1.8e19 under unsigned extraction; the reader must
    // reject it cleanly instead of dying in the allocator.
    std::stringstream ss(
        "isingrbm-checkpoint v2\nfamily rbm\nsection meta 0\nend meta\n"
        "section model\n-1 5\n");
    EXPECT_EXIT(rbm::loadCheckpoint(ss), testing::ExitedWithCode(1),
                "bad RBM dimensions");
}

TEST(CheckpointDeathTest, RejectsImplausiblyLargeWeightMatrix)
{
    std::stringstream ss(
        "isingrbm-checkpoint v2\nfamily rbm\nsection meta 0\nend meta\n"
        "section model\n16000000 16000000\n");
    EXPECT_EXIT(rbm::loadCheckpoint(ss), testing::ExitedWithCode(1),
                "implausibly large");
}

TEST(CheckpointDeathTest, RejectsCorruptSectionStructure)
{
    Checkpoint ckpt;
    ckpt.model = randomRbm(3, 3, 12);
    std::stringstream ss;
    rbm::saveCheckpoint(ckpt, ss);
    std::string text = ss.str();
    const auto at = text.find("section model");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 13, "sectoin model");  // corrupted tag
    std::stringstream bad(text);
    EXPECT_EXIT(rbm::loadCheckpoint(bad), testing::ExitedWithCode(1),
                "corrupt");
}
