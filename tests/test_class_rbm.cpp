/**
 * @file
 * Tests for the classification RBM and substrate-based inference.
 */

#include <gtest/gtest.h>

#include "data/bars.hpp"
#include "data/glyphs.hpp"
#include "rbm/class_rbm.hpp"

using namespace ising;
using rbm::ClassRbm;
using rbm::ClassRbmConfig;
using util::Rng;

namespace {

/** Train a small ClassRbm on bars-and-stripes orientation labels. */
ClassRbm
trainedOnBars(const data::Dataset &ds, int epochs, std::uint64_t seed)
{
    Rng rng(seed);
    ClassRbm model(ds.dim(), 2, 24);
    model.initRandom(rng);
    ClassRbmConfig cfg;
    cfg.learningRate = 0.1;
    for (int e = 0; e < epochs; ++e)
        model.trainEpoch(ds, cfg, rng);
    return model;
}

} // namespace

TEST(ClassRbm, JointDimensions)
{
    ClassRbm model(16, 4, 8);
    EXPECT_EQ(model.numPixels(), 16u);
    EXPECT_EQ(model.numClasses(), 4);
    EXPECT_EQ(model.joint().numVisible(), 20u);
    EXPECT_EQ(model.joint().numHidden(), 8u);
}

TEST(ClassRbm, ScoresOnePerClass)
{
    Rng rng(1);
    ClassRbm model(9, 3, 6);
    model.initRandom(rng, 0.3f);
    std::vector<float> pixels(9, 0.5f);
    std::vector<double> scores;
    model.classScores(pixels.data(), scores);
    ASSERT_EQ(scores.size(), 3u);
}

TEST(ClassRbm, LearnsBarsVsStripes)
{
    Rng dataRng(2);
    const data::Dataset ds = data::makeBarsAndStripes(4, 300, dataRng);
    const ClassRbm model = trainedOnBars(ds, 150, 3);
    EXPECT_GT(model.accuracy(ds), 0.85);
}

TEST(ClassRbm, UntrainedIsNearChance)
{
    Rng dataRng(4);
    const data::Dataset ds = data::makeBarsAndStripes(4, 200, dataRng);
    Rng rng(5);
    ClassRbm model(16, 2, 12);
    model.initRandom(rng);
    const double acc = model.accuracy(ds);
    EXPECT_GT(acc, 0.3);
    EXPECT_LT(acc, 0.75);
}

TEST(ClassRbm, FabricInferenceMatchesDigital)
{
    // Substrate-sampled classification must track exact free-energy
    // classification closely on an ideal fabric.
    Rng dataRng(6);
    const data::Dataset ds = data::makeBarsAndStripes(4, 300, dataRng);
    const ClassRbm model = trainedOnBars(ds, 150, 7);

    Rng fabricRng(8);
    machine::AnalogConfig cfg;
    cfg.idealComponents = true;
    machine::AnalogFabric fabric(model.joint().numVisible(),
                                 model.joint().numHidden(), cfg,
                                 fabricRng);
    fabric.program(model.joint());

    // Evaluate on a subset for speed.
    data::Dataset subset;
    subset.numClasses = 2;
    subset.samples.reset(60, ds.dim());
    subset.labels.resize(60);
    for (std::size_t r = 0; r < 60; ++r) {
        std::copy_n(ds.sample(r), ds.dim(), subset.samples.row(r));
        subset.labels[r] = ds.labels[r];
    }
    const double digital = model.accuracy(subset);
    const double analog =
        model.fabricAccuracy(fabric, subset, 30, fabricRng);
    EXPECT_GT(analog, digital - 0.15);
}

TEST(ClassRbm, FabricInferenceSurvivesCircuitModel)
{
    Rng dataRng(9);
    const data::Dataset ds = data::makeBarsAndStripes(4, 300, dataRng);
    const ClassRbm model = trainedOnBars(ds, 150, 10);

    Rng fabricRng(11);
    machine::AnalogConfig cfg;  // non-ideal defaults + mild noise
    cfg.noise = {0.05, 0.05};
    machine::AnalogFabric fabric(model.joint().numVisible(),
                                 model.joint().numHidden(), cfg,
                                 fabricRng);
    fabric.program(model.joint());

    data::Dataset subset;
    subset.numClasses = 2;
    subset.samples.reset(60, ds.dim());
    subset.labels.resize(60);
    for (std::size_t r = 0; r < 60; ++r) {
        std::copy_n(ds.sample(r), ds.dim(), subset.samples.row(r));
        subset.labels[r] = ds.labels[r];
    }
    EXPECT_GT(model.fabricAccuracy(fabric, subset, 30, fabricRng),
              0.65);
}
