/**
 * @file
 * Tests for the Appendix B circuit component behavioral models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ising/components.hpp"
#include "ising/noise.hpp"
#include "util/math.hpp"

using namespace ising::machine;
using ising::util::Rng;

TEST(SigmoidUnit, IdealMatchesLogistic)
{
    const SigmoidUnit su(1.0, 0.0, 0.0);
    for (double x = -6.0; x <= 6.0; x += 0.5)
        EXPECT_NEAR(su.transfer(x), ising::util::sigmoid(x), 1e-12) << x;
}

TEST(SigmoidUnit, GainControlsSlope)
{
    const SigmoidUnit lo(0.5, 0.0, 0.0), hi(3.0, 0.0, 0.0);
    // At x=1 the higher-gain curve is farther from 0.5.
    EXPECT_GT(hi.transfer(1.0), lo.transfer(1.0));
    EXPECT_LT(hi.transfer(-1.0), lo.transfer(-1.0));
}

TEST(SigmoidUnit, OffsetShiftsCenter)
{
    const SigmoidUnit su(1.0, 2.0, 0.0);
    EXPECT_NEAR(su.transfer(2.0), 0.5, 1e-12);
}

TEST(SigmoidUnit, RailCompressionKeepsAwayFromRails)
{
    const SigmoidUnit su(1.0, 0.0, 0.1);
    EXPECT_GT(su.transfer(-100.0), 0.04);
    EXPECT_LT(su.transfer(100.0), 0.96);
    EXPECT_NEAR(su.transfer(0.0), 0.5, 1e-12);  // center preserved
}

TEST(SigmoidUnit, MonotoneEverywhere)
{
    const SigmoidUnit su(1.3, 0.2, 0.05);
    double prev = su.transfer(-10.0);
    for (double x = -9.9; x <= 10.0; x += 0.1) {
        const double cur = su.transfer(x);
        ASSERT_GE(cur, prev);
        prev = cur;
    }
}

TEST(DiodeRng, LevelsInUnitInterval)
{
    const DiodeRng gen(0.29);
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const double l = gen.level(rng);
        ASSERT_GE(l, 0.0);
        ASSERT_LE(l, 1.0);
    }
}

TEST(DiodeRng, CenteredAtHalf)
{
    const DiodeRng gen(0.29);
    Rng rng(2);
    double mean = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        mean += gen.level(rng);
    EXPECT_NEAR(mean / n, 0.5, 0.01);
}

TEST(DiodeRng, InducedSamplingLawApproximatelyCorrect)
{
    // P(level < p) should be close to p in the mid-range -- that is
    // what makes comparator sampling approximately Bernoulli(p).
    const DiodeRng gen(0.29);
    Rng rng(3);
    for (double p : {0.3, 0.5, 0.7}) {
        int hits = 0;
        const int n = 40000;
        for (int i = 0; i < n; ++i)
            hits += gen.level(rng) < p;
        EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.06) << p;
    }
}

TEST(Comparator, FiresOnLevelBelowProbability)
{
    Comparator comp(0.0);
    EXPECT_TRUE(comp.fire(0.8, 0.5));
    EXPECT_FALSE(comp.fire(0.2, 0.5));
}

TEST(Comparator, OffsetShiftsThreshold)
{
    Rng rng(4);
    Comparator comp(0.5);  // huge sigma to force visible offset
    comp.calibrateOffset(rng);
    // Behavior must still be monotone in p.
    int fired = 0;
    for (double p = 0.0; p <= 1.0; p += 0.01)
        fired += comp.fire(p, 0.5);
    EXPECT_GT(fired, 0);
    EXPECT_LT(fired, 101);
}

TEST(Dtc, QuantizesToGrid)
{
    const Dtc dtc(8);
    const double q = dtc.convert(0.5);
    EXPECT_NEAR(q, 0.5, 1.0 / 255.0);
    EXPECT_DOUBLE_EQ(dtc.convert(0.0), 0.0);
    EXPECT_DOUBLE_EQ(dtc.convert(1.0), 1.0);
}

TEST(Dtc, ClampsOutOfRange)
{
    const Dtc dtc(8);
    EXPECT_DOUBLE_EQ(dtc.convert(-0.4), 0.0);
    EXPECT_DOUBLE_EQ(dtc.convert(1.7), 1.0);
}

TEST(Dtc, LowResolutionIsCoarser)
{
    const Dtc fine(8), coarse(2);
    // 2-bit converter has only 4 levels: 0, 1/3, 2/3, 1.
    EXPECT_NEAR(coarse.convert(0.4), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(fine.convert(0.4), 0.4, 1.0 / 255.0);
}

TEST(Adc, RoundTripWithinLsb)
{
    const Adc adc(8, 2.0);
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double w = rng.uniform(-2.0, 2.0);
        EXPECT_NEAR(adc.convert(w), w, adc.lsb() / 2.0 + 1e-12);
    }
}

TEST(Adc, SaturatesAtFullScale)
{
    const Adc adc(8, 1.0);
    EXPECT_DOUBLE_EQ(adc.convert(5.0), 1.0);
    EXPECT_DOUBLE_EQ(adc.convert(-5.0), -1.0);
}

TEST(Adc, LsbMatchesResolution)
{
    const Adc adc8(8, 1.0), adc4(4, 1.0);
    EXPECT_NEAR(adc8.lsb(), 2.0 / 255.0, 1e-12);
    EXPECT_NEAR(adc4.lsb(), 2.0 / 15.0, 1e-12);
}

TEST(ChargePump, MovesInRequestedDirection)
{
    const ChargePump pump(0.01, 1.0, 0.0);
    EXPECT_GT(pump.apply(0.0, +1, 1.0), 0.0);
    EXPECT_LT(pump.apply(0.0, -1, 1.0), 0.0);
}

TEST(ChargePump, LinearStepWhenIdeal)
{
    const ChargePump pump(0.01, 1.0, 0.0);
    EXPECT_NEAR(pump.apply(0.3, +1, 1.0), 0.31, 1e-12);
    EXPECT_NEAR(pump.apply(0.3, -1, 1.0), 0.29, 1e-12);
}

TEST(ChargePump, GainScalesStep)
{
    const ChargePump pump(0.01, 1.0, 0.0);
    EXPECT_NEAR(pump.apply(0.0, +1, 2.0), 0.02, 1e-12);
    EXPECT_NEAR(pump.apply(0.0, +1, 0.5), 0.005, 1e-12);
}

TEST(ChargePump, StepShrinksNearRails)
{
    const ChargePump pump(0.01, 1.0, 0.8);
    const double stepAtZero = pump.apply(0.0, +1, 1.0) - 0.0;
    const double stepNearRail = pump.apply(0.9, +1, 1.0) - 0.9;
    EXPECT_GT(stepAtZero, stepNearRail);
    EXPECT_GT(stepNearRail, 0.0);
}

TEST(ChargePump, SaturatesAtWMax)
{
    const ChargePump pump(0.5, 1.0, 0.0);
    double w = 0.9;
    for (int i = 0; i < 10; ++i)
        w = pump.apply(w, +1, 1.0);
    EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(NoiseSpec, PaperGridHasSixCombos)
{
    const auto grid = paperNoiseGrid();
    ASSERT_EQ(grid.size(), 6u);
    EXPECT_TRUE(grid[0].isNoiseless());
    EXPECT_DOUBLE_EQ(grid[5].rmsVariation, 0.30);
    EXPECT_DOUBLE_EQ(grid[5].rmsNoise, 0.30);
}

TEST(VariationField, DisabledWhenRmsZero)
{
    VariationField field;
    Rng rng(6);
    field.materialize(10, 10, 0.0, rng);
    EXPECT_FALSE(field.enabled());
    EXPECT_FLOAT_EQ(field.gain(3, 4), 1.0f);
}

TEST(VariationField, RmsCalibrated)
{
    VariationField field;
    Rng rng(7);
    field.materialize(200, 200, 0.1, rng);
    ASSERT_TRUE(field.enabled());
    double mean = 0.0, var = 0.0;
    const std::size_t n = 200 * 200;
    for (std::size_t i = 0; i < 200; ++i)
        for (std::size_t j = 0; j < 200; ++j)
            mean += field.gain(i, j);
    mean /= n;
    for (std::size_t i = 0; i < 200; ++i)
        for (std::size_t j = 0; j < 200; ++j) {
            const double d = field.gain(i, j) - mean;
            var += d * d;
        }
    var /= n;
    EXPECT_NEAR(mean, 1.0, 0.005);
    EXPECT_NEAR(std::sqrt(var), 0.1, 0.01);
}

TEST(VariationField, GainsNeverNegative)
{
    VariationField field;
    Rng rng(8);
    field.materialize(100, 100, 0.5, rng);  // extreme mismatch
    for (std::size_t i = 0; i < 100; ++i)
        for (std::size_t j = 0; j < 100; ++j)
            ASSERT_GE(field.gain(i, j), 0.05f);
}
