/**
 * @file
 * Tests for the convolutional RBM front end.
 */

#include <gtest/gtest.h>

#include "data/glyphs.hpp"
#include "eval/classifier.hpp"
#include "rbm/conv_rbm.hpp"

using namespace ising;
using rbm::ConvRbm;
using rbm::ConvRbmConfig;
using util::Rng;

TEST(ConvRbm, DimensionsFollowConfig)
{
    ConvRbmConfig cfg;
    cfg.imageSide = 28;
    cfg.filterSide = 7;
    cfg.numFilters = 12;
    cfg.poolGrid = 3;
    const ConvRbm model(cfg);
    EXPECT_EQ(model.hiddenSide(), 22u);
    EXPECT_EQ(model.featureDim(), 108u);  // the paper's CIFAR input dim
}

TEST(ConvRbm, NorbShapeGivesThirtySix)
{
    ConvRbmConfig cfg;
    cfg.numFilters = 4;
    cfg.poolGrid = 3;
    const ConvRbm model(cfg);
    EXPECT_EQ(model.featureDim(), 36u);  // the paper's SmallNORB dim
}

TEST(ConvRbm, HiddenMapsAreProbabilities)
{
    ConvRbmConfig cfg;
    cfg.numFilters = 4;
    ConvRbm model(cfg);
    Rng rng(1);
    model.initRandom(rng, 0.5f);
    const data::Dataset ds = data::makeGlyphs(data::digitsStyle(), 3, 2);
    std::vector<float> maps;
    model.hiddenMaps(ds.sample(0), maps);
    ASSERT_EQ(maps.size(), 4u * 22 * 22);
    for (float p : maps) {
        ASSERT_GE(p, 0.0f);
        ASSERT_LE(p, 1.0f);
    }
}

TEST(ConvRbm, ReconstructionShapeAndRange)
{
    ConvRbmConfig cfg;
    cfg.numFilters = 4;
    ConvRbm model(cfg);
    Rng rng(2);
    model.initRandom(rng);
    const data::Dataset ds = data::makeGlyphs(data::digitsStyle(), 2, 3);
    std::vector<float> maps, recon;
    model.hiddenMaps(ds.sample(0), maps);
    model.reconstruct(maps, recon);
    ASSERT_EQ(recon.size(), 28u * 28u);
    for (float v : recon) {
        ASSERT_GE(v, 0.0f);
        ASSERT_LE(v, 1.0f);
    }
}

TEST(ConvRbm, TrainingReducesReconstructionError)
{
    ConvRbmConfig cfg;
    cfg.numFilters = 6;
    cfg.learningRate = 0.05;
    ConvRbm model(cfg);
    Rng rng(3);
    model.initRandom(rng);
    const data::Dataset raw =
        data::makeGlyphs(data::digitsStyle(), 120, 4);
    const data::Dataset ds = data::binarizeThreshold(raw);
    const double before = model.reconstructionError(ds);
    for (int e = 0; e < 3; ++e)
        model.trainEpoch(ds, rng);
    const double after = model.reconstructionError(ds);
    EXPECT_LT(after, before);
}

TEST(ConvRbm, FeaturesHaveExpectedShapeAndRange)
{
    ConvRbmConfig cfg;
    cfg.numFilters = 12;
    cfg.poolGrid = 3;
    ConvRbm model(cfg);
    Rng rng(4);
    model.initRandom(rng);
    const data::Dataset ds = data::makeGlyphs(data::digitsStyle(), 10, 5);
    const data::Dataset feats = model.transform(ds);
    EXPECT_EQ(feats.dim(), 108u);
    EXPECT_EQ(feats.size(), 10u);
    EXPECT_EQ(feats.labels, ds.labels);
    const float *d = feats.samples.data();
    for (std::size_t i = 0; i < feats.samples.size(); ++i) {
        ASSERT_GE(d[i], 0.0f);
        ASSERT_LE(d[i], 1.0f);
    }
}

TEST(ConvRbm, FeaturesClassifyAboveChance)
{
    ConvRbmConfig cfg;
    cfg.numFilters = 8;
    cfg.poolGrid = 3;
    ConvRbm model(cfg);
    Rng rng(5);
    model.initRandom(rng);
    const data::Dataset raw =
        data::makeGlyphs(data::digitsStyle(), 400, 6);
    const data::Dataset ds = data::binarizeThreshold(raw);
    for (int e = 0; e < 2; ++e)
        model.trainEpoch(ds, rng);

    util::Rng splitRng(7);
    const data::Split split = data::trainTestSplit(ds, 0.25, splitRng);
    eval::LogisticConfig head;
    head.epochs = 40;
    const double acc = eval::classifierAccuracy(
        model.transform(split.train), model.transform(split.test), head,
        splitRng);
    EXPECT_GT(acc, 0.4);  // chance is 0.1
}
