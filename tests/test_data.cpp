/**
 * @file
 * Tests for the dataset container and synthetic generators.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset.hpp"
#include "data/fraud.hpp"
#include "data/glyphs.hpp"
#include "data/patches.hpp"
#include "data/ratings.hpp"
#include "data/registry.hpp"

using namespace ising::data;
using ising::util::Rng;

TEST(Glyphs, ShapeAndLabels)
{
    const Dataset ds = makeGlyphs(digitsStyle(), 100, 1);
    EXPECT_EQ(ds.size(), 100u);
    EXPECT_EQ(ds.dim(), kGlyphPixels);
    EXPECT_EQ(ds.numClasses, 10);
    ASSERT_EQ(ds.labels.size(), 100u);
    for (int label : ds.labels) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label, 10);
    }
}

TEST(Glyphs, ValuesInUnitInterval)
{
    const Dataset ds = makeGlyphs(kuzushijiStyle(), 50, 2);
    const float *d = ds.samples.data();
    for (std::size_t i = 0; i < ds.samples.size(); ++i) {
        ASSERT_GE(d[i], 0.0f);
        ASSERT_LE(d[i], 1.0f);
    }
}

TEST(Glyphs, DeterministicForSameSeed)
{
    const Dataset a = makeGlyphs(digitsStyle(), 30, 5);
    const Dataset b = makeGlyphs(digitsStyle(), 30, 5);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.labels, b.labels);
}

TEST(Glyphs, DifferentSeedsDiffer)
{
    const Dataset a = makeGlyphs(digitsStyle(), 30, 5);
    const Dataset b = makeGlyphs(digitsStyle(), 30, 6);
    EXPECT_NE(a.samples, b.samples);
}

TEST(Glyphs, ClassesAreBalanced)
{
    const Dataset ds = makeGlyphs(digitsStyle(), 200, 3);
    std::vector<int> counts(10, 0);
    for (int label : ds.labels)
        ++counts[label];
    for (int c : counts)
        EXPECT_EQ(c, 20);
}

TEST(Glyphs, SameClassMoreSimilarThanCrossClass)
{
    // Intra-class pixel distance should be smaller than inter-class on
    // average: the property that makes the data learnable.
    const Dataset ds = makeGlyphs(digitsStyle(), 400, 4);
    double intra = 0.0, inter = 0.0;
    int intraN = 0, interN = 0;
    for (std::size_t a = 0; a < 100; ++a) {
        for (std::size_t b = a + 1; b < 100; ++b) {
            double d = 0.0;
            for (std::size_t p = 0; p < ds.dim(); ++p) {
                const double diff = ds.sample(a)[p] - ds.sample(b)[p];
                d += diff * diff;
            }
            if (ds.labels[a] == ds.labels[b]) {
                intra += d;
                ++intraN;
            } else {
                inter += d;
                ++interN;
            }
        }
    }
    EXPECT_LT(intra / intraN, inter / interN);
}

TEST(Glyphs, FamiliesProduceDistinctData)
{
    const Dataset digits = makeGlyphs(digitsStyle(), 20, 9);
    const Dataset kmn = makeGlyphs(kuzushijiStyle(), 20, 9);
    EXPECT_NE(digits.samples, kmn.samples);
}

TEST(Glyphs, LettersHave26Classes)
{
    const Dataset ds = makeGlyphs(lettersStyle(), 52, 1);
    EXPECT_EQ(ds.numClasses, 26);
    std::set<int> seen(ds.labels.begin(), ds.labels.end());
    EXPECT_EQ(seen.size(), 26u);
}

TEST(Glyphs, FashionUsesFilledShapes)
{
    // Filled silhouettes cover far more pixels than stroke glyphs.
    const Dataset fashion = makeGlyphs(fashionStyle(), 50, 2);
    const Dataset digits = makeGlyphs(digitsStyle(), 50, 2);
    double fashionInk = 0.0, digitsInk = 0.0;
    const float *f = fashion.samples.data();
    const float *d = digits.samples.data();
    for (std::size_t i = 0; i < fashion.samples.size(); ++i) {
        fashionInk += f[i];
        digitsInk += d[i];
    }
    EXPECT_GT(fashionInk, 1.4 * digitsInk);
}

TEST(Patches, CifarShape)
{
    const Dataset ds = makePatches(cifarPatchStyle(), 60, 3);
    EXPECT_EQ(ds.dim(), 108u);
    EXPECT_EQ(ds.numClasses, 10);
}

TEST(Patches, NorbShape)
{
    const Dataset ds = makePatches(norbPatchStyle(), 60, 3);
    EXPECT_EQ(ds.dim(), 36u);
    EXPECT_EQ(ds.numClasses, 5);
}

TEST(Patches, ValuesInUnitInterval)
{
    const Dataset ds = makePatches(cifarPatchStyle(), 40, 8);
    const float *d = ds.samples.data();
    for (std::size_t i = 0; i < ds.samples.size(); ++i) {
        ASSERT_GE(d[i], 0.0f);
        ASSERT_LE(d[i], 1.0f);
    }
}

TEST(Patches, Deterministic)
{
    const Dataset a = makePatches(norbPatchStyle(), 25, 4);
    const Dataset b = makePatches(norbPatchStyle(), 25, 4);
    EXPECT_EQ(a.samples, b.samples);
}

TEST(Ratings, CorpusShapeAndRanges)
{
    RatingStyle style;
    style.numUsers = 100;
    style.numItems = 40;
    const RatingData rd = makeRatings(style, 11);
    EXPECT_EQ(rd.numUsers, 100);
    EXPECT_EQ(rd.numItems, 40);
    EXPECT_FALSE(rd.train.empty());
    EXPECT_FALSE(rd.test.empty());
    for (const auto &r : rd.train) {
        EXPECT_GE(r.stars, 1);
        EXPECT_LE(r.stars, 5);
        EXPECT_LT(r.user, 100);
        EXPECT_LT(r.item, 40);
    }
}

TEST(Ratings, DensityApproximatelyHonored)
{
    RatingStyle style;
    style.numUsers = 200;
    style.numItems = 50;
    style.density = 0.2;
    const RatingData rd = makeRatings(style, 21);
    const double total = rd.train.size() + rd.test.size();
    EXPECT_NEAR(total / (200.0 * 50.0), 0.2, 0.03);
}

TEST(Ratings, TestFractionHonored)
{
    RatingStyle style;
    style.testFrac = 0.25;
    const RatingData rd = makeRatings(style, 31);
    const double total = rd.train.size() + rd.test.size();
    EXPECT_NEAR(rd.test.size() / total, 0.25, 0.02);
}

TEST(Ratings, UsesAllStarLevels)
{
    const RatingData rd = makeRatings({}, 41);
    std::set<int> stars;
    for (const auto &r : rd.train)
        stars.insert(r.stars);
    EXPECT_EQ(stars.size(), 5u);
}

TEST(Fraud, PrevalenceAndLabels)
{
    FraudStyle style;
    style.fraudRate = 0.05;
    const Dataset ds = makeFraud(style, 4000, 5);
    EXPECT_EQ(ds.dim(), 28u);
    EXPECT_EQ(ds.numClasses, 2);
    int positives = 0;
    for (int y : ds.labels)
        positives += y;
    EXPECT_NEAR(positives / 4000.0, 0.05, 0.015);
}

TEST(Fraud, FraudLooksDifferent)
{
    FraudStyle style;
    style.fraudRate = 0.5;  // balanced for the statistics
    const Dataset ds = makeFraud(style, 2000, 6);
    // Mean feature vectors of the classes should differ noticeably.
    std::vector<double> mean0(ds.dim(), 0.0), mean1(ds.dim(), 0.0);
    int n0 = 0, n1 = 0;
    for (std::size_t r = 0; r < ds.size(); ++r) {
        auto &mean = ds.labels[r] ? mean1 : mean0;
        (ds.labels[r] ? n1 : n0)++;
        for (std::size_t f = 0; f < ds.dim(); ++f)
            mean[f] += ds.sample(r)[f];
    }
    double dist = 0.0;
    for (std::size_t f = 0; f < ds.dim(); ++f) {
        const double d = mean0[f] / n0 - mean1[f] / n1;
        dist += d * d;
    }
    EXPECT_GT(std::sqrt(dist), 0.2);
}

TEST(Dataset, TrainTestSplitPartitions)
{
    Rng rng(1);
    const Dataset ds = makeGlyphs(digitsStyle(), 100, 2);
    const Split split = trainTestSplit(ds, 0.2, rng);
    EXPECT_EQ(split.train.size(), 80u);
    EXPECT_EQ(split.test.size(), 20u);
    EXPECT_EQ(split.train.dim(), ds.dim());
    EXPECT_EQ(split.train.numClasses, ds.numClasses);
}

TEST(Dataset, BinarizeThresholdProducesBits)
{
    const Dataset ds = makeGlyphs(digitsStyle(), 20, 3);
    const Dataset bin = binarizeThreshold(ds, 0.5f);
    const float *d = bin.samples.data();
    for (std::size_t i = 0; i < bin.samples.size(); ++i)
        ASSERT_TRUE(d[i] == 0.0f || d[i] == 1.0f);
}

TEST(Dataset, StochasticBinarizePreservesMean)
{
    Rng rng(7);
    Dataset ds;
    ds.samples.reset(2000, 1, 0.3f);
    const Dataset bin = binarize(ds, rng);
    double mean = 0.0;
    for (std::size_t r = 0; r < bin.size(); ++r)
        mean += bin.sample(r)[0];
    EXPECT_NEAR(mean / bin.size(), 0.3, 0.03);
}

TEST(Dataset, MinibatchPlanCoversAllOnce)
{
    Rng rng(9);
    MinibatchPlan plan(103, 10, rng);
    EXPECT_EQ(plan.numBatches(), 11u);
    std::set<std::size_t> seen;
    for (std::size_t b = 0; b < plan.numBatches(); ++b)
        for (std::size_t idx : plan.batch(b))
            EXPECT_TRUE(seen.insert(idx).second) << "dup " << idx;
    EXPECT_EQ(seen.size(), 103u);
}

TEST(Registry, Table1HasEightRows)
{
    const auto configs = table1Configs();
    ASSERT_EQ(configs.size(), 8u);
    EXPECT_EQ(configs[0].name, "MNIST");
    EXPECT_EQ(configs[0].visible, 784u);
    EXPECT_EQ(configs[0].hidden, 200u);
    EXPECT_EQ(configs[3].hidden, 1024u);
    EXPECT_EQ(configs[6].visible, 943u);
    EXPECT_EQ(configs[7].hidden, 10u);
}

TEST(Registry, ConfigLookupWorks)
{
    const auto cfg = configFor("FMNIST");
    EXPECT_EQ(cfg.visible, 784u);
    EXPECT_EQ(cfg.hidden, 784u);
    ASSERT_EQ(cfg.dbnLayers.size(), 4u);
}

TEST(Registry, ImageGeneratorsMatchConfigDims)
{
    for (const char *name :
         {"MNIST", "KMNIST", "FMNIST", "EMNIST", "CIFAR10", "SmallNorb"}) {
        const auto cfg = configFor(name);
        const Dataset ds = makeBenchmarkData(name, 20, 1);
        EXPECT_EQ(ds.dim(), cfg.visible) << name;
    }
}
