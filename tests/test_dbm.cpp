/**
 * @file
 * Tests for the Deep Boltzmann Machine.
 */

#include <gtest/gtest.h>

#include "data/bars.hpp"
#include "data/glyphs.hpp"
#include "eval/classifier.hpp"
#include "rbm/dbm.hpp"

using namespace ising;
using rbm::Dbm;
using rbm::DbmConfig;
using util::Rng;

TEST(Dbm, Dimensions)
{
    Dbm dbm(20, 12, 6);
    EXPECT_EQ(dbm.numVisible(), 20u);
    EXPECT_EQ(dbm.hidden1(), 12u);
    EXPECT_EQ(dbm.hidden2(), 6u);
    EXPECT_EQ(dbm.w1().rows(), 20u);
    EXPECT_EQ(dbm.w2().cols(), 6u);
}

TEST(Dbm, EnergyMatchesDefinition)
{
    Rng rng(1);
    Dbm dbm(3, 2, 2);
    dbm.initRandom(rng, 0.5f);
    const float v[3] = {1, 0, 1};
    const float h1[2] = {1, 1};
    const float h2[2] = {0, 1};
    double expected = 0.0;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 2; ++j)
            expected -= v[i] * dbm.w1()(i, j) * h1[j];
    for (int j = 0; j < 2; ++j)
        for (int k = 0; k < 2; ++k)
            expected -= h1[j] * dbm.w2()(j, k) * h2[k];
    // Biases are zero after initRandom.
    EXPECT_NEAR(dbm.energy(v, h1, h2), expected, 1e-5);
}

TEST(Dbm, MeanFieldConvergesToFixedPoint)
{
    Rng rng(2);
    Dbm dbm(9, 6, 4);
    dbm.initRandom(rng, 0.4f);
    const float v[9] = {1, 0, 1, 0, 1, 0, 1, 0, 1};
    std::vector<double> mu1a, mu2a, mu1b, mu2b;
    dbm.meanField(v, 30, mu1a, mu2a);
    dbm.meanField(v, 60, mu1b, mu2b);
    for (std::size_t j = 0; j < mu1a.size(); ++j)
        EXPECT_NEAR(mu1a[j], mu1b[j], 1e-3) << j;
    for (std::size_t k = 0; k < mu2a.size(); ++k)
        EXPECT_NEAR(mu2a[k], mu2b[k], 1e-3) << k;
}

TEST(Dbm, MeanFieldValuesAreProbabilities)
{
    Rng rng(3);
    Dbm dbm(9, 6, 4);
    dbm.initRandom(rng, 1.0f);
    const float v[9] = {1, 1, 1, 0, 0, 0, 1, 1, 1};
    std::vector<double> mu1, mu2;
    dbm.meanField(v, 10, mu1, mu2);
    for (double x : mu1) {
        ASSERT_GE(x, 0.0);
        ASSERT_LE(x, 1.0);
    }
    for (double x : mu2) {
        ASSERT_GE(x, 0.0);
        ASSERT_LE(x, 1.0);
    }
}

TEST(Dbm, PretrainThenJointTrainingImprovesReconstruction)
{
    Rng rng(4);
    const data::Dataset ds = data::makeBarsAndStripes(4, 300, rng);
    Dbm dbm(16, 12, 6);
    dbm.initRandom(rng);
    DbmConfig cfg;
    cfg.pretrainEpochs = 3;
    const double untrained = dbm.reconstructionError(ds);
    dbm.pretrain(ds, cfg, rng);
    const double pretrained = dbm.reconstructionError(ds);
    EXPECT_LT(pretrained, untrained);
    for (int e = 0; e < 10; ++e)
        dbm.trainEpoch(ds, cfg, rng);
    const double joint = dbm.reconstructionError(ds);
    EXPECT_LT(joint, untrained);
    // Joint training must not destroy the pretrained solution.
    EXPECT_LT(joint, pretrained + 0.02);
}

TEST(Dbm, TransformShapesAndRange)
{
    Rng rng(5);
    Dbm dbm(16, 10, 5);
    dbm.initRandom(rng, 0.3f);
    const data::Dataset ds = data::makeBarsAndStripes(4, 20, rng);
    const data::Dataset top = dbm.transform(ds);
    EXPECT_EQ(top.size(), 20u);
    EXPECT_EQ(top.dim(), 15u);  // [mu1 | mu2]
    EXPECT_EQ(top.labels, ds.labels);
    const float *d = top.samples.data();
    for (std::size_t i = 0; i < top.samples.size(); ++i) {
        ASSERT_GE(d[i], 0.0f);
        ASSERT_LE(d[i], 1.0f);
    }
}

TEST(Dbm, FeaturesClassifyAboveChance)
{
    Rng rng(6);
    const data::Dataset raw =
        data::makeGlyphs(data::digitsStyle(), 400, 7);
    const data::Dataset ds = data::binarizeThreshold(raw);
    Dbm dbm(ds.dim(), 48, 24);
    dbm.initRandom(rng);
    DbmConfig cfg;
    cfg.pretrainEpochs = 5;
    dbm.pretrain(ds, cfg, rng);
    // Joint mean-field/PCD fine-tuning is delicate (the paper leaves
    // DBM-specific optimizations out of scope); a gentle rate
    // preserves the pretrained solution while exercising the full
    // machinery.
    cfg.learningRate = 0.003;
    cfg.gibbsStepsPerUpdate = 2;
    for (int e = 0; e < 2; ++e)
        dbm.trainEpoch(ds, cfg, rng);

    util::Rng splitRng(8);
    const data::Split split = data::trainTestSplit(ds, 0.25, splitRng);
    eval::LogisticConfig head;
    head.epochs = 40;
    const double acc = eval::classifierAccuracy(
        dbm.transform(split.train), dbm.transform(split.test), head,
        splitRng);
    EXPECT_GT(acc, 0.6);  // chance is 0.1
}
