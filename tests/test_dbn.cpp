/**
 * @file
 * Tests for DBN stacking.
 */

#include <gtest/gtest.h>

#include "data/glyphs.hpp"
#include "rbm/cd_trainer.hpp"
#include "rbm/dbn.hpp"

using namespace ising;
using util::Rng;

TEST(Dbn, LayerConstruction)
{
    rbm::Dbn dbn({784, 100, 50});
    ASSERT_EQ(dbn.numLayers(), 2u);
    EXPECT_EQ(dbn.layer(0).numVisible(), 784u);
    EXPECT_EQ(dbn.layer(0).numHidden(), 100u);
    EXPECT_EQ(dbn.layer(1).numVisible(), 100u);
    EXPECT_EQ(dbn.layer(1).numHidden(), 50u);
}

TEST(Dbn, TransformShapes)
{
    Rng rng(1);
    rbm::Dbn dbn({20, 12, 6});
    dbn.initRandom(rng);
    data::Dataset ds;
    ds.samples.reset(7, 20);
    ds.labels.assign(7, 0);
    ds.numClasses = 1;
    const data::Dataset top = dbn.transform(ds);
    EXPECT_EQ(top.size(), 7u);
    EXPECT_EQ(top.dim(), 6u);
    EXPECT_EQ(top.labels.size(), 7u);
    const data::Dataset mid = dbn.transform(ds, 1);
    EXPECT_EQ(mid.dim(), 12u);
}

TEST(Dbn, TransformValuesAreProbabilities)
{
    Rng rng(2);
    rbm::Dbn dbn({16, 8, 4});
    dbn.initRandom(rng, 0.5f);
    data::Dataset ds;
    ds.samples.reset(5, 16, 1.0f);
    const data::Dataset top = dbn.transform(ds);
    const float *d = top.samples.data();
    for (std::size_t i = 0; i < top.samples.size(); ++i) {
        ASSERT_GE(d[i], 0.0f);
        ASSERT_LE(d[i], 1.0f);
    }
}

TEST(Dbn, GreedyTrainingVisitsEveryLayer)
{
    Rng rng(3);
    rbm::Dbn dbn({12, 8, 5});
    dbn.initRandom(rng);
    data::Dataset ds;
    ds.samples.reset(10, 12);
    for (std::size_t r = 0; r < 10; ++r)
        for (std::size_t i = 0; i < 12; ++i)
            ds.samples(r, i) = (r + i) % 2 ? 1.0f : 0.0f;

    std::vector<std::pair<std::size_t, std::size_t>> seen;
    dbn.trainGreedy(ds, [&](rbm::Rbm &layer, const data::Dataset &d) {
        seen.emplace_back(layer.numVisible(), d.dim());
    });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].first, 12u);
    EXPECT_EQ(seen[0].second, 12u);
    EXPECT_EQ(seen[1].first, 8u);
    EXPECT_EQ(seen[1].second, 8u);  // layer 1 sees layer-0 features
}

TEST(Dbn, GreedyTrainingWithCdLearns)
{
    Rng rng(4);
    const data::Dataset raw =
        data::makeGlyphs(data::digitsStyle(), 200, 11);
    const data::Dataset ds = data::binarizeThreshold(raw);

    rbm::Dbn dbn({ds.dim(), 32, 16});
    dbn.initRandom(rng);
    dbn.trainGreedy(ds, [&](rbm::Rbm &layer, const data::Dataset &d) {
        rbm::CdConfig cfg;
        cfg.learningRate = 0.1;
        cfg.batchSize = 20;
        rbm::CdTrainer trainer(layer, cfg, rng);
        for (int e = 0; e < 3; ++e)
            trainer.trainEpoch(d);
    });
    // Features at the top should not be degenerate: variance across
    // samples must be nonzero for a majority of units.
    const data::Dataset top = dbn.transform(ds);
    std::size_t varied = 0;
    for (std::size_t j = 0; j < top.dim(); ++j) {
        float mn = 1.0f, mx = 0.0f;
        for (std::size_t r = 0; r < top.size(); ++r) {
            mn = std::min(mn, top.samples(r, j));
            mx = std::max(mx, top.samples(r, j));
        }
        varied += (mx - mn) > 0.05f;
    }
    EXPECT_GT(varied, top.dim() / 2);
}
