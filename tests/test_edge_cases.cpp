/**
 * @file
 * Edge-case and robustness tests across modules: degenerate sizes,
 * idempotence, and boundary conditions that the main suites do not
 * cover.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"
#include "ising/analog.hpp"
#include "ising/brim.hpp"
#include "linalg/ops.hpp"
#include "linalg/stats.hpp"
#include "rbm/cd_trainer.hpp"
#include "rbm/rbm.hpp"

using namespace ising;
using util::Rng;

TEST(EdgeCases, OneByOneRbm)
{
    Rng rng(1);
    rbm::Rbm model(1, 1);
    model.weights()(0, 0) = 2.0f;
    model.visibleBias()[0] = -1.0f;
    const float v1[1] = {1.0f};
    const float h1[1] = {1.0f};
    EXPECT_NEAR(model.energy(v1, h1), -2.0 + 1.0, 1e-6);
    linalg::Vector ph;
    model.hiddenProbs(v1, ph);
    ASSERT_EQ(ph.size(), 1u);
}

TEST(EdgeCases, EmptyDatasetOperations)
{
    rbm::Rbm model(4, 2);
    linalg::Matrix empty(0, 4);
    EXPECT_EQ(model.meanFreeEnergy(empty), 0.0);
}

TEST(EdgeCases, SingleSampleTraining)
{
    Rng rng(2);
    data::Dataset ds;
    ds.samples.reset(1, 6);
    ds.samples(0, 0) = ds.samples(0, 3) = 1.0f;
    rbm::Rbm model(6, 3);
    model.initRandom(rng, 0.01f);
    rbm::CdConfig cfg;
    cfg.batchSize = 8;  // bigger than the dataset
    rbm::CdTrainer trainer(model, cfg, rng);
    trainer.trainEpoch(ds);  // must not crash
    EXPECT_EQ(trainer.updatesDone(), 1u);
}

TEST(EdgeCases, FabricProgramIsIdempotent)
{
    Rng rng(3);
    rbm::Rbm model(5, 4);
    model.initRandom(rng, 0.4f);
    machine::AnalogConfig cfg;
    machine::AnalogFabric fabric(5, 4, cfg, rng);
    fabric.program(model);
    const linalg::Matrix once = fabric.rawWeights();
    fabric.program(model);
    EXPECT_EQ(fabric.rawWeights(), once);
}

TEST(EdgeCases, FabricAnnealZeroStepsKeepsHidden)
{
    Rng rng(4);
    machine::AnalogConfig cfg;
    cfg.idealComponents = true;
    machine::AnalogFabric fabric(4, 3, cfg, rng);
    rbm::Rbm model(4, 3);
    fabric.program(model);
    linalg::Vector v, h(3);
    h[1] = 1.0f;
    const linalg::Vector before = h;
    fabric.anneal(0, v, h, rng);
    EXPECT_EQ(h, before);
    EXPECT_TRUE(v.empty());  // never touched
}

TEST(EdgeCases, BrimSingleNode)
{
    Rng rng(5);
    machine::IsingModel model(1);
    model.setField(0, 1.0f);
    machine::BrimConfig cfg;
    machine::BrimSimulator sim(model, cfg, rng);
    sim.relax(1e-10, 20000);
    EXPECT_EQ(sim.spins()[0], 1);  // aligns with the field
}

TEST(EdgeCases, MovingAverageWindowLargerThanSeries)
{
    const auto ma = linalg::movingAverage({2.0, 4.0}, 10);
    ASSERT_EQ(ma.size(), 2u);
    EXPECT_NEAR(ma[0], 2.0, 1e-12);
    EXPECT_NEAR(ma[1], 3.0, 1e-12);
}

TEST(EdgeCases, MovingAverageZeroWindowTreatedAsOne)
{
    const auto ma = linalg::movingAverage({1.0, 5.0}, 0);
    EXPECT_NEAR(ma[1], 5.0, 1e-12);
}

TEST(EdgeCases, PercentileSingleElement)
{
    EXPECT_DOUBLE_EQ(linalg::percentile({7.0}, 50), 7.0);
    EXPECT_DOUBLE_EQ(linalg::percentile({7.0}, 0), 7.0);
}

TEST(EdgeCases, RunningStatsSingleValue)
{
    linalg::RunningStats s;
    s.push(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(EdgeCases, SoftmaxSingleEntry)
{
    float v[1] = {42.0f};
    linalg::softmaxInPlace(v, 1);
    EXPECT_FLOAT_EQ(v[0], 1.0f);
}

TEST(EdgeCases, GemvEmptyBias)
{
    // Zero-sized hidden layer: projections produce empty outputs
    // without touching memory.
    linalg::Matrix w(3, 0);
    linalg::Vector x(3, 1.0f), b, y;
    linalg::gemvT(w, x, b, y);
    EXPECT_EQ(y.size(), 0u);
}

TEST(EdgeCases, SplitWithZeroTestFraction)
{
    Rng rng(6);
    data::Dataset ds;
    ds.samples.reset(10, 2);
    ds.labels.assign(10, 0);
    ds.numClasses = 1;
    const data::Split split = data::trainTestSplit(ds, 0.0, rng);
    EXPECT_EQ(split.train.size(), 10u);
    EXPECT_EQ(split.test.size(), 0u);
}

TEST(EdgeCases, FreeEnergyOfAllOnesFinite)
{
    Rng rng(7);
    rbm::Rbm model(20, 10);
    model.initRandom(rng, 2.0f);  // large weights
    std::vector<float> ones(20, 1.0f);
    const double f = model.freeEnergy(ones.data());
    EXPECT_TRUE(std::isfinite(f));
}
