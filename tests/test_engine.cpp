/**
 * @file
 * engine/ tests: registry caching, and the server's bit-reproducibility
 * contract -- a request's result is identical whether it is served
 * alone, coalesced with other requests, chunked under a smaller kernel
 * batch depth, or executed on a different worker count.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "engine/server.hpp"
#include "rbm/serialize.hpp"

using namespace ising;
using engine::ModelRegistry;
using engine::Op;
using engine::Request;
using engine::Response;
using engine::Server;
using engine::ServerConfig;
using util::Rng;

namespace {

namespace fs = std::filesystem;

rbm::Rbm
randomRbm(std::size_t m, std::size_t n, std::uint64_t seed)
{
    rbm::Rbm model(m, n);
    Rng rng(seed);
    model.initRandom(rng, 0.5f);
    return model;
}

linalg::Matrix
randomBinaryRows(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    linalg::Matrix out(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t i = 0; i < cols; ++i)
            out(r, i) = rng.bernoulli(0.5) ? 1.0f : 0.0f;
    return out;
}

/** Scratch registry directory, unique per fixture instance. */
class EngineTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("isingrbm_test_engine_" +
                 std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()->name()))
                   .string();
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string dir_;
};

/** Requests used across the coalescing tests.  Ragged model sizes
 *  (not multiples of the 64-bit word) exercise the packed kernels'
 *  tail paths. */
Request
sampleRequest()
{
    Request req;
    req.model = "m";
    req.op = Op::Sample;
    req.count = 3;
    req.steps = 4;
    req.seed = 101;
    return req;
}

Request
featurizeRequest(std::size_t dim)
{
    Request req;
    req.model = "m";
    req.op = Op::Featurize;
    req.input = randomBinaryRows(2, dim, 77);
    req.seed = 202;
    return req;
}

Request
reconstructRequest(std::size_t dim)
{
    Request req;
    req.model = "m";
    req.op = Op::Reconstruct;
    req.input = randomBinaryRows(5, dim, 88);
    req.seed = 303;
    return req;
}

} // namespace

TEST_F(EngineTest, RegistryCachesAndReloads)
{
    ModelRegistry registry(dir_);
    rbm::Checkpoint ckpt;
    ckpt.meta.backend = "cd";
    ckpt.model = randomRbm(9, 4, 1);
    registry.put("alpha", std::move(ckpt));

    EXPECT_TRUE(registry.contains("alpha"));
    EXPECT_FALSE(registry.contains("beta"));
    EXPECT_EQ(registry.names(), std::vector<std::string>({"alpha"}));

    const auto first = registry.get("alpha");
    const auto second = registry.get("alpha");
    EXPECT_EQ(first.get(), second.get());  // load-once cache
    EXPECT_EQ(registry.cachedCount(), 1u);
    EXPECT_EQ(first->meta().name, "alpha");  // stamped by put()

    registry.evict("alpha");
    EXPECT_EQ(registry.cachedCount(), 0u);
    const auto reloaded = registry.get("alpha");  // from disk
    EXPECT_NE(first.get(), reloaded.get());
    EXPECT_EQ(std::get<rbm::Rbm>(reloaded->checkpoint().model).weights(),
              std::get<rbm::Rbm>(first->checkpoint().model).weights());
}

TEST_F(EngineTest, RegistryReloadsOverwrittenCheckpoints)
{
    ModelRegistry registry(dir_);
    rbm::Checkpoint first;
    first.meta.epoch = 1;
    first.model = randomRbm(9, 4, 1);
    registry.put("alpha", std::move(first));
    const auto cached = registry.get("alpha");
    EXPECT_EQ(cached->meta().epoch, 1);

    // A training session streams a newer snapshot straight to the
    // archive path (no put(), so the cache never hears about it).
    rbm::Checkpoint second;
    second.meta.name = "alpha";
    second.meta.epoch = 7;
    second.model = randomRbm(9, 4, 2);
    rbm::saveCheckpoint(second, registry.pathFor("alpha"));

    // get() revalidates the (mtime, size) stamp and reloads.
    const auto fresh = registry.get("alpha");
    EXPECT_EQ(fresh->meta().epoch, 7);
    EXPECT_NE(cached.get(), fresh.get());
    // Unchanged on disk from here: the cache serves the same view.
    EXPECT_EQ(registry.get("alpha").get(), fresh.get());
}

TEST_F(EngineTest, ServerResultIndependentOfCoalescing)
{
    ModelRegistry registry(dir_);
    rbm::Checkpoint ckpt;
    ckpt.model = randomRbm(33, 17, 2);  // ragged on purpose
    registry.put("m", std::move(ckpt));

    // Each request served alone.
    Server solo(registry);
    const Response sampleAlone =
        std::move(solo.serve({sampleRequest()}).front());
    const Response featAlone =
        std::move(solo.serve({featurizeRequest(33)}).front());
    const Response reconAlone =
        std::move(solo.serve({reconstructRequest(33)}).front());

    // The same requests coalesced into one flush, with extra traffic
    // mixed in before and between them.
    Server mixed(registry);
    Request fillerA = sampleRequest();
    fillerA.seed = 999;
    fillerA.count = 7;
    Request fillerB = featurizeRequest(33);
    fillerB.seed = 888;
    auto responses = mixed.serve(
        {fillerA, sampleRequest(), featurizeRequest(33), fillerB,
         reconstructRequest(33)});
    EXPECT_GE(mixed.stats().groups, 2u);  // sampling + featurize groups

    EXPECT_EQ(responses[1].output, sampleAlone.output);
    EXPECT_EQ(responses[2].output, featAlone.output);
    EXPECT_EQ(responses[4].output, reconAlone.output);
}

TEST_F(EngineTest, ServerResultIndependentOfKernelBatchDepth)
{
    ModelRegistry registry(dir_);
    rbm::Checkpoint ckpt;
    ckpt.model = randomRbm(33, 17, 2);
    registry.put("m", std::move(ckpt));

    Server wide(registry);  // default depth: everything in one batch
    ServerConfig narrowCfg;
    narrowCfg.maxBatchRows = 2;  // forces chunk splits mid-request
    Server narrow(registry, narrowCfg);

    auto wideRes = wide.serve({sampleRequest(), reconstructRequest(33)});
    auto narrowRes =
        narrow.serve({sampleRequest(), reconstructRequest(33)});
    EXPECT_GT(narrow.stats().kernelBatches,
              wide.stats().kernelBatches);
    EXPECT_EQ(wideRes[0].output, narrowRes[0].output);
    EXPECT_EQ(wideRes[1].output, narrowRes[1].output);
}

TEST_F(EngineTest, ServerResultIndependentOfWorkerCount)
{
    exec::ThreadPool serial(1), threaded(4);
    ModelRegistry serialReg(dir_ + "_serial", &serial);
    ModelRegistry threadedReg(dir_ + "_threaded", &threaded);
    rbm::Checkpoint ckpt;
    ckpt.model = randomRbm(33, 17, 2);
    serialReg.put("m", ckpt);
    threadedReg.put("m", std::move(ckpt));

    Server a(serialReg), b(threadedReg);
    auto ra = a.serve({sampleRequest(), featurizeRequest(33),
                       reconstructRequest(33)});
    auto rb = b.serve({sampleRequest(), featurizeRequest(33),
                       reconstructRequest(33)});
    for (std::size_t i = 0; i < ra.size(); ++i)
        EXPECT_EQ(ra[i].output, rb[i].output);
    fs::remove_all(dir_ + "_serial");
    fs::remove_all(dir_ + "_threaded");
}

TEST_F(EngineTest, ServerIsDeterministicAcrossRuns)
{
    ModelRegistry registry(dir_);
    rbm::Checkpoint ckpt;
    ckpt.model = randomRbm(20, 10, 3);
    registry.put("m", std::move(ckpt));

    Server server(registry);
    Request req = sampleRequest();
    req.count = 4;
    const Response first = std::move(server.serve({req}).front());
    const Response second = std::move(server.serve({req}).front());
    EXPECT_EQ(first.output, second.output);
    EXPECT_EQ(first.output.rows(), 4u);
    EXPECT_EQ(first.output.cols(), 20u);
}

TEST_F(EngineTest, ServerAutoFlushesAtMaxRows)
{
    ModelRegistry registry(dir_);
    rbm::Checkpoint ckpt;
    ckpt.model = randomRbm(12, 6, 4);
    registry.put("m", std::move(ckpt));

    ServerConfig cfg;
    cfg.maxBatchRows = 4;
    Server server(registry, cfg);
    Request req = featurizeRequest(12);  // 2 rows
    auto f1 = server.submit(req);
    EXPECT_EQ(server.pendingRows(), 2u);
    auto f2 = server.submit(req);  // hits the 4-row window
    EXPECT_EQ(server.pendingRows(), 0u);
    EXPECT_EQ(server.stats().flushes, 1u);
    EXPECT_EQ(f1.get().output, f2.get().output);  // same input + seed
}

TEST_F(EngineTest, ClassifyMatchesExactFreeEnergy)
{
    Rng rng(5);
    rbm::ClassRbm model(15, 3, 8);
    model.initRandom(rng, 0.4f);
    rbm::Checkpoint ckpt;
    ckpt.model = model;
    ModelRegistry registry(dir_);
    registry.put("clf", std::move(ckpt));

    const linalg::Matrix probes = randomBinaryRows(9, 15, 44);
    Request req;
    req.model = "clf";
    req.op = Op::Classify;
    req.input = probes;
    Server server(registry);
    const Response res = std::move(server.serve({req}).front());
    ASSERT_EQ(res.labels.size(), 9u);
    for (std::size_t r = 0; r < probes.rows(); ++r)
        EXPECT_EQ(res.labels[r], model.classify(probes.row(r)));
}

TEST_F(EngineTest, DbnFeaturizeMatchesTransform)
{
    Rng rng(6);
    rbm::Dbn stack({18, 9, 5});
    stack.initRandom(rng, 0.4f);
    rbm::Checkpoint ckpt;
    ckpt.model = stack;
    ModelRegistry registry(dir_);
    registry.put("deep", std::move(ckpt));

    data::Dataset probe;
    probe.samples = randomBinaryRows(6, 18, 55);
    const data::Dataset expected = stack.transform(probe);

    Request req;
    req.model = "deep";
    req.op = Op::Featurize;
    req.input = probe.samples;
    Server server(registry);
    const Response res = std::move(server.serve({req}).front());
    EXPECT_EQ(res.output, expected.samples);
}

TEST_F(EngineTest, SampleSupportedAcrossFlatFamilies)
{
    ModelRegistry registry(dir_);

    rbm::Checkpoint plain;
    plain.model = randomRbm(10, 6, 7);
    registry.put("plain", std::move(plain));

    Rng rng(8);
    rbm::ClassRbm clf(8, 2, 5);
    clf.initRandom(rng, 0.3f);
    rbm::Checkpoint classCkpt;
    classCkpt.model = clf;
    registry.put("clf", std::move(classCkpt));

    rbm::Dbn stack({10, 7, 4});
    stack.initRandom(rng, 0.3f);
    rbm::Checkpoint deep;
    deep.model = stack;
    registry.put("deep", std::move(deep));

    Server server(registry);
    for (const auto &[name, dim] :
         std::vector<std::pair<std::string, std::size_t>>{
             {"plain", 10}, {"clf", 10}, {"deep", 10}}) {
        Request req;
        req.model = name;
        req.op = Op::Sample;
        req.count = 2;
        req.steps = 3;
        req.seed = 60;
        const Response res = std::move(server.serve({req}).front());
        EXPECT_EQ(res.output.rows(), 2u) << name;
        EXPECT_EQ(res.output.cols(), dim) << name;
        for (std::size_t i = 0; i < res.output.cols(); ++i) {
            EXPECT_GE(res.output(0, i), 0.0f) << name;
            EXPECT_LE(res.output(0, i), 1.0f) << name;
        }
    }
}
