/**
 * @file
 * Tests for the classifier head and quality metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "eval/classifier.hpp"
#include "eval/metrics.hpp"

using namespace ising::eval;
using ising::util::Rng;

namespace {

/** Linearly separable two-class blobs. */
ising::data::Dataset
blobs(std::size_t n, std::uint64_t seed)
{
    ising::data::Dataset ds;
    ds.numClasses = 2;
    ds.samples.reset(n, 2);
    ds.labels.resize(n);
    Rng rng(seed);
    for (std::size_t r = 0; r < n; ++r) {
        const int cls = static_cast<int>(r % 2);
        ds.labels[r] = cls;
        const double cx = cls ? 0.75 : 0.25;
        ds.samples(r, 0) =
            static_cast<float>(cx + rng.gaussian(0, 0.08));
        ds.samples(r, 1) =
            static_cast<float>(cx + rng.gaussian(0, 0.08));
    }
    return ds;
}

} // namespace

TEST(LogisticRegression, LearnsSeparableBlobs)
{
    Rng rng(1);
    const auto train = blobs(400, 2);
    const auto test = blobs(200, 3);
    LogisticRegression head(2, 2);
    LogisticConfig cfg;
    cfg.epochs = 50;
    head.train(train, cfg, rng);
    EXPECT_GT(head.accuracy(test), 0.95);
}

TEST(LogisticRegression, LossDecreasesDuringTraining)
{
    Rng rng(2);
    const auto train = blobs(300, 4);
    LogisticRegression head(2, 2);
    const double before = head.loss(train);
    LogisticConfig cfg;
    cfg.epochs = 20;
    head.train(train, cfg, rng);
    EXPECT_LT(head.loss(train), before);
}

TEST(LogisticRegression, ProbabilitiesNormalize)
{
    Rng rng(3);
    const auto train = blobs(100, 5);
    LogisticRegression head(2, 2);
    LogisticConfig cfg;
    cfg.epochs = 5;
    head.train(train, cfg, rng);
    std::vector<double> probs;
    head.predictProbs(train.sample(0), probs);
    ASSERT_EQ(probs.size(), 2u);
    EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-9);
    EXPECT_GE(probs[0], 0.0);
}

TEST(LogisticRegression, MulticlassWorks)
{
    // Four Gaussian blobs at square corners.
    Rng rng(4);
    ising::data::Dataset ds;
    ds.numClasses = 4;
    ds.samples.reset(400, 2);
    ds.labels.resize(400);
    for (std::size_t r = 0; r < 400; ++r) {
        const int cls = static_cast<int>(r % 4);
        ds.labels[r] = cls;
        ds.samples(r, 0) = static_cast<float>(
            (cls & 1 ? 0.8 : 0.2) + rng.gaussian(0, 0.05));
        ds.samples(r, 1) = static_cast<float>(
            (cls & 2 ? 0.8 : 0.2) + rng.gaussian(0, 0.05));
    }
    LogisticRegression head(2, 4);
    LogisticConfig cfg;
    cfg.epochs = 60;
    head.train(ds, cfg, rng);
    EXPECT_GT(head.accuracy(ds), 0.97);
}

TEST(ClassifierAccuracyHelper, EndToEnd)
{
    Rng rng(5);
    const auto train = blobs(300, 6);
    const auto test = blobs(150, 7);
    LogisticConfig cfg;
    cfg.epochs = 40;
    EXPECT_GT(classifierAccuracy(train, test, cfg, rng), 0.9);
}

TEST(Metrics, AucPerfectRanking)
{
    const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
    const std::vector<int> labels = {1, 1, 0, 0};
    EXPECT_NEAR(rocAuc(scores, labels), 1.0, 1e-12);
}

TEST(Metrics, AucReversedRanking)
{
    const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
    const std::vector<int> labels = {1, 1, 0, 0};
    EXPECT_NEAR(rocAuc(scores, labels), 0.0, 1e-12);
}

TEST(Metrics, AucRandomScoresNearHalf)
{
    Rng rng(8);
    std::vector<double> scores(4000);
    std::vector<int> labels(4000);
    for (std::size_t i = 0; i < scores.size(); ++i) {
        scores[i] = rng.uniform();
        labels[i] = rng.bernoulli(0.3);
    }
    EXPECT_NEAR(rocAuc(scores, labels), 0.5, 0.03);
}

TEST(Metrics, AucHandlesTies)
{
    const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
    const std::vector<int> labels = {1, 0, 1, 0};
    EXPECT_NEAR(rocAuc(scores, labels), 0.5, 1e-12);
}

TEST(Metrics, RocCurveEndpoints)
{
    const std::vector<double> scores = {0.9, 0.4, 0.6, 0.1};
    const std::vector<int> labels = {1, 0, 1, 0};
    const auto curve = rocCurve(scores, labels);
    EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
    EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
    EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
    EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
}

TEST(Metrics, RocCurveMonotone)
{
    Rng rng(9);
    std::vector<double> scores(500);
    std::vector<int> labels(500);
    for (std::size_t i = 0; i < 500; ++i) {
        labels[i] = rng.bernoulli(0.2);
        scores[i] = labels[i] + rng.gaussian(0, 1.0);
    }
    const auto curve = rocCurve(scores, labels);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        ASSERT_GE(curve[i].fpr, curve[i - 1].fpr);
        ASSERT_GE(curve[i].tpr, curve[i - 1].tpr);
    }
}

TEST(Metrics, KlZeroForIdenticalDistributions)
{
    const std::vector<double> p = {0.25, 0.25, 0.5};
    EXPECT_NEAR(klDivergence(p, p), 0.0, 1e-12);
}

TEST(Metrics, KlPositiveAndAsymmetric)
{
    const std::vector<double> p = {0.9, 0.1};
    const std::vector<double> q = {0.5, 0.5};
    const double pq = klDivergence(p, q);
    const double qp = klDivergence(q, p);
    EXPECT_GT(pq, 0.0);
    EXPECT_GT(qp, 0.0);
    EXPECT_NE(pq, qp);
}

TEST(Metrics, KlKnownValue)
{
    const std::vector<double> p = {1.0, 0.0};
    const std::vector<double> q = {0.5, 0.5};
    EXPECT_NEAR(klDivergence(p, q), std::log(2.0), 1e-12);
}

TEST(Metrics, KlHandlesZeroTargetMassViaFloor)
{
    const std::vector<double> p = {0.5, 0.5};
    const std::vector<double> q = {1.0, 0.0};
    const double kl = klDivergence(p, q, 1e-12);
    EXPECT_TRUE(std::isfinite(kl));
    EXPECT_GT(kl, 5.0);
}

TEST(Metrics, MaeBasics)
{
    EXPECT_NEAR(meanAbsoluteError({1, 2, 3}, {1, 2, 3}), 0.0, 1e-12);
    EXPECT_NEAR(meanAbsoluteError({1, 2}, {2, 4}), 1.5, 1e-12);
}
