/**
 * @file
 * Tests for exact enumeration: partition function, marginals, ML
 * training.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"
#include "rbm/exact.hpp"
#include "rbm/rbm.hpp"

using namespace ising::rbm;
using ising::util::Rng;

namespace {

Rbm
randomModel(std::size_t m, std::size_t n, std::uint64_t seed,
            float scale = 0.6f)
{
    Rbm model(m, n);
    Rng rng(seed);
    model.initRandom(rng, scale);
    for (std::size_t i = 0; i < m; ++i)
        model.visibleBias()[i] = static_cast<float>(rng.gaussian(0, 0.2));
    for (std::size_t j = 0; j < n; ++j)
        model.hiddenBias()[j] = static_cast<float>(rng.gaussian(0, 0.2));
    return model;
}

} // namespace

TEST(Exact, ZeroModelPartition)
{
    // All-zero parameters: Z = 2^(m+n).
    const Rbm model(5, 3);
    EXPECT_NEAR(exact::logPartition(model), (5 + 3) * std::log(2.0), 1e-9);
}

TEST(Exact, PartitionAgreesOverBothEnumerationSides)
{
    // m < n enumerates visibles, m > n enumerates hiddens: transposing
    // the model must give the same Z.
    const Rbm model = randomModel(4, 9, 1);
    Rbm transposed(9, 4);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 9; ++j)
            transposed.weights()(j, i) = model.weights()(i, j);
    for (std::size_t i = 0; i < 4; ++i)
        transposed.hiddenBias()[i] = model.visibleBias()[i];
    for (std::size_t j = 0; j < 9; ++j)
        transposed.visibleBias()[j] = model.hiddenBias()[j];
    EXPECT_NEAR(exact::logPartition(model),
                exact::logPartition(transposed), 1e-6);
}

TEST(Exact, VisibleDistributionSumsToOne)
{
    const Rbm model = randomModel(8, 4, 2);
    const auto p = exact::visibleDistribution(model);
    ASSERT_EQ(p.size(), 256u);
    double total = 0.0;
    for (double x : p) {
        EXPECT_GE(x, 0.0);
        total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Exact, LogProbConsistentWithDistribution)
{
    const Rbm model = randomModel(6, 3, 3);
    const double logZ = exact::logPartition(model);
    const auto p = exact::visibleDistribution(model);
    float v[6];
    for (std::size_t idx : {0u, 5u, 17u, 63u}) {
        exact::decodeState(idx, 6, v);
        EXPECT_NEAR(std::exp(exact::logProb(model, v, logZ)), p[idx],
                    1e-9);
    }
}

TEST(Exact, DecodeStateLittleEndian)
{
    float v[4];
    exact::decodeState(0b1010, 4, v);
    EXPECT_EQ(v[0], 0.0f);
    EXPECT_EQ(v[1], 1.0f);
    EXPECT_EQ(v[2], 0.0f);
    EXPECT_EQ(v[3], 1.0f);
}

TEST(Exact, EmpiricalDistributionCounts)
{
    ising::data::Dataset ds;
    ds.samples.reset(4, 2);
    // Rows: 00, 01 (v0=1), 01, 11
    ds.samples(1, 0) = 1;
    ds.samples(2, 0) = 1;
    ds.samples(3, 0) = 1;
    ds.samples(3, 1) = 1;
    const auto p = exact::empiricalDistribution(ds);
    ASSERT_EQ(p.size(), 4u);
    EXPECT_NEAR(p[0], 0.25, 1e-12);
    EXPECT_NEAR(p[1], 0.50, 1e-12);
    EXPECT_NEAR(p[2], 0.00, 1e-12);
    EXPECT_NEAR(p[3], 0.25, 1e-12);
}

TEST(Exact, MlStepIncreasesLikelihood)
{
    Rng rng(4);
    // A small dataset of structured patterns.
    ising::data::Dataset ds;
    ds.samples.reset(20, 8);
    for (std::size_t r = 0; r < 20; ++r)
        for (std::size_t i = 0; i < 8; ++i)
            ds.samples(r, i) = (r % 2 == i % 2) ? 1.0f : 0.0f;

    Rbm model(8, 3);
    model.initRandom(rng, 0.01f);
    double prev = exact::meanLogLikelihood(model, ds);
    // Gradients are tiny near the symmetric zero init, so give the
    // ascent enough steps to escape the plateau.
    for (int step = 0; step < 120; ++step)
        exact::mlStep(model, ds, 0.2);
    const double after = exact::meanLogLikelihood(model, ds);
    EXPECT_GT(after, prev + 0.5);
}

TEST(Exact, MlGradientVanishesAtFixedPoint)
{
    // After long ML training on an easy target, another step should
    // barely move the parameters.
    Rng rng(5);
    ising::data::Dataset ds;
    ds.samples.reset(4, 4);
    ds.samples(0, 0) = ds.samples(0, 1) = 1;
    ds.samples(1, 2) = ds.samples(1, 3) = 1;
    ds.samples(2, 0) = ds.samples(2, 1) = 1;
    ds.samples(3, 2) = ds.samples(3, 3) = 1;

    Rbm model(4, 2);
    model.initRandom(rng, 0.05f);
    for (int step = 0; step < 3000; ++step)
        exact::mlStep(model, ds, 0.5);
    const double before = exact::meanLogLikelihood(model, ds);
    exact::mlStep(model, ds, 0.5);
    const double after = exact::meanLogLikelihood(model, ds);
    EXPECT_NEAR(after, before, 1e-3);
    EXPECT_GE(after, before - 1e-6);  // still non-decreasing
}

TEST(Exact, MeanLogLikelihoodBounded)
{
    const Rbm model = randomModel(6, 3, 6);
    ising::data::Dataset ds;
    ds.samples.reset(10, 6);
    Rng rng(8);
    for (std::size_t r = 0; r < 10; ++r)
        for (std::size_t i = 0; i < 6; ++i)
            ds.samples(r, i) = rng.bernoulli(0.5) ? 1.0f : 0.0f;
    const double ll = exact::meanLogLikelihood(model, ds);
    EXPECT_LT(ll, 0.0);
    // Cannot be below log of uniform over 2^6 minus model skew bound.
    EXPECT_GT(ll, -40.0);
}
