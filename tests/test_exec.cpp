/**
 * @file
 * Tests for the exec/ runtime: thread pool, parallelFor semantics and
 * deterministic RNG stream splitting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "exec/parallel_for.hpp"
#include "exec/thread_pool.hpp"
#include "util/rng.hpp"

using namespace ising;

TEST(ThreadPool, SpawnsRequestedWorkers)
{
    exec::ThreadPool pool(3);
    EXPECT_EQ(pool.numWorkers(), 3u);
}

TEST(ThreadPool, DefaultWorkerCountIsPositive)
{
    EXPECT_GE(exec::defaultWorkerCount(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks)
{
    exec::ThreadPool pool(2);
    std::atomic<int> ran{0};
    std::mutex m;
    std::condition_variable cv;
    for (int i = 0; i < 16; ++i)
        pool.submit([&] {
            if (++ran == 16)
                cv.notify_all();
        });
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return ran.load() == 16; });
    EXPECT_EQ(ran.load(), 16);
}

TEST(ParallelFor, EmptyRangeIsANoOp)
{
    exec::ThreadPool pool(4);
    std::atomic<int> calls{0};
    exec::parallelFor(pool, 0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce)
{
    exec::ThreadPool pool(4);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    exec::parallelFor(pool, n, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, FewerItemsThanWorkers)
{
    exec::ThreadPool pool(8);
    std::vector<std::atomic<int>> visits(3);
    exec::parallelFor(pool, 3, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, SingleWorkerRunsInline)
{
    exec::ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(4);
    exec::parallelFor(pool, 4, [&](std::size_t i) {
        seen[i] = std::this_thread::get_id();
    });
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);
}

TEST(ParallelFor, PropagatesExceptionsToCaller)
{
    exec::ThreadPool pool(4);
    EXPECT_THROW(
        exec::parallelFor(pool, 100,
                          [](std::size_t i) {
                              if (i == 37)
                                  throw std::runtime_error("boom");
                          }),
        std::runtime_error);
}

TEST(ParallelFor, PoolSurvivesAThrowingLoop)
{
    exec::ThreadPool pool(2);
    try {
        exec::parallelFor(pool, 10, [](std::size_t) {
            throw std::logic_error("each chunk throws");
        });
    } catch (const std::logic_error &) {
    }
    // The pool must still process work afterwards.
    std::atomic<int> sum{0};
    exec::parallelFor(pool, 10, [&](std::size_t i) {
        sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelFor, NestedCallsRunInline)
{
    exec::ThreadPool pool(4);
    std::atomic<int> inner{0};
    exec::parallelFor(pool, 4, [&](std::size_t) {
        exec::parallelFor(pool, 4, [&](std::size_t) { ++inner; });
    });
    EXPECT_EQ(inner.load(), 16);
}

TEST(ParallelForChunks, CoversRangeWithDisjointChunks)
{
    exec::ThreadPool pool(4);
    std::mutex m;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    exec::parallelForChunks(pool, 103,
                            [&](std::size_t begin, std::size_t end) {
                                std::lock_guard<std::mutex> lock(m);
                                chunks.emplace_back(begin, end);
                            });
    std::size_t covered = 0;
    for (const auto &[begin, end] : chunks) {
        ASSERT_LT(begin, end);
        covered += end - begin;
    }
    EXPECT_EQ(covered, 103u);
    EXPECT_LE(chunks.size(), 4u);
}

TEST(RngStreams, DeterministicPerIndex)
{
    util::Rng a = util::Rng::stream(42, 7);
    util::Rng b = util::Rng::stream(42, 7);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(RngStreams, DistinctIndicesDecorrelated)
{
    util::Rng a = util::Rng::stream(42, 0);
    util::Rng b = util::Rng::stream(42, 1);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(RngStreams, DistinctRootSeedsDecorrelated)
{
    util::Rng a = util::Rng::stream(1, 3);
    util::Rng b = util::Rng::stream(2, 3);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(RngStreams, ManyAdjacentStreamsStayDistinct)
{
    // Per-index streams back every parallel loop; neighbouring
    // indices must not collide on their first draws.
    std::set<std::uint64_t> firsts;
    for (std::uint64_t i = 0; i < 1000; ++i)
        firsts.insert(util::Rng::stream(1234, i).next());
    EXPECT_EQ(firsts.size(), 1000u);
}
