/**
 * @file
 * Tests for the extension modules: multi-chip scaling model,
 * data-parallel BGF, sampling utilities and the shared pipelines.
 */

#include <gtest/gtest.h>

#include "accel/parallel_bgf.hpp"
#include "data/glyphs.hpp"
#include "eval/pipelines.hpp"
#include "hw/multichip.hpp"
#include "rbm/exact.hpp"
#include "rbm/sampling.hpp"

using namespace ising;
using util::Rng;

namespace {

data::Dataset
stripeData(std::size_t rows, std::size_t dim)
{
    data::Dataset ds;
    ds.samples.reset(rows, dim);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t i = 0; i < dim; ++i)
            ds.samples(r, i) = (r % 2 == i % 2) ? 1.0f : 0.0f;
    return ds;
}

} // namespace

TEST(MultiChip, SingleChipHasNoOverhead)
{
    const hw::TimingModel timing;
    const hw::MultiChipModel model({}, timing);
    const hw::Tiling t = model.tilingFor(784, 200);
    EXPECT_TRUE(t.singleChip());
    EXPECT_EQ(model.sweepOverheadSec(784, 200), 0.0);
}

TEST(MultiChip, TilingCountsMatchCeilDivision)
{
    const hw::TimingModel timing;
    hw::MultiChipConfig cfg;
    cfg.chipEdge = 1600;
    const hw::MultiChipModel model(cfg, timing);
    const hw::Tiling t = model.tilingFor(4000, 2000);
    EXPECT_EQ(t.tilesVisible, 3u);
    EXPECT_EQ(t.tilesHidden, 2u);
    EXPECT_EQ(t.numChips(), 6u);
}

TEST(MultiChip, TiledSweepsPayOverhead)
{
    const hw::TimingModel timing;
    hw::MultiChipConfig cfg;
    cfg.chipEdge = 1600;
    const hw::MultiChipModel model(cfg, timing);
    EXPECT_GT(model.sweepOverheadSec(4000, 2000), 0.0);
}

TEST(MultiChip, BgfTimeMatchesBaseModelWhenFitting)
{
    const hw::TimingModel timing;
    const hw::MultiChipModel model({}, timing);
    const hw::Workload w{"fit", {{784, 200}}, 10, 500, 1000};
    EXPECT_DOUBLE_EQ(model.bgfTime(w).total(),
                     timing.bgfTime(w).total());
    EXPECT_EQ(model.interChipEnergyJ(w), 0.0);
}

TEST(MultiChip, LargerModelCostsMore)
{
    const hw::TimingModel timing;
    hw::MultiChipConfig cfg;
    cfg.chipEdge = 1024;
    const hw::MultiChipModel model(cfg, timing);
    const hw::Workload big{"big", {{4096, 2048}}, 10, 500, 1000};
    EXPECT_GT(model.bgfTime(big).total(),
              timing.bgfTime(big).total());
    EXPECT_GT(model.interChipEnergyJ(big), 0.0);
}

TEST(ParallelBgf, ReplicasShareWorkAndLearn)
{
    Rng rng(1);
    const auto ds = stripeData(60, 12);
    accel::ParallelBgfConfig cfg;
    cfg.numReplicas = 3;
    cfg.syncEveryEpochs = 2;
    cfg.replica.learningRate = 0.02;
    cfg.replica.annealSteps = 2;
    cfg.replica.analog.idealComponents = true;
    accel::ParallelBgf fleet(12, 5, cfg, rng);
    rbm::Rbm init(12, 5);
    init.initRandom(rng, 0.01f);
    fleet.initialize(init);

    const double before =
        rbm::exact::meanLogLikelihood(fleet.readOut(), ds);
    fleet.train(ds, 30);
    const double after =
        rbm::exact::meanLogLikelihood(fleet.readOut(), ds);
    EXPECT_GT(after, before + 1.0);
    EXPECT_EQ(fleet.samplesProcessed(), 30u * 60u);
    EXPECT_EQ(fleet.numReplicas(), 3u);
}

TEST(ParallelBgf, SingleReplicaDegeneratesToBgf)
{
    Rng rng(2);
    const auto ds = stripeData(40, 10);
    accel::ParallelBgfConfig cfg;
    cfg.numReplicas = 1;
    cfg.replica.learningRate = 0.02;
    cfg.replica.analog.idealComponents = true;
    accel::ParallelBgf fleet(10, 4, cfg, rng);
    rbm::Rbm init(10, 4);
    init.initRandom(rng, 0.01f);
    fleet.initialize(init);
    fleet.train(ds, 20);
    EXPECT_GT(rbm::exact::meanLogLikelihood(fleet.readOut(), ds), -7.0);
}

TEST(ParallelBgf, WideFleetStillLearns)
{
    // Sharding the stream over many fabrics (each replica sees 1/R of
    // the data per epoch) must still converge to a useful model.
    const auto ds = stripeData(60, 10);
    Rng rng(3);
    accel::ParallelBgfConfig cfg;
    cfg.numReplicas = 4;
    cfg.replica.learningRate = 0.02;
    cfg.replica.annealSteps = 2;
    cfg.replica.analog.idealComponents = true;
    accel::ParallelBgf fleet(10, 4, cfg, rng);
    rbm::Rbm init(10, 4);
    init.initRandom(rng, 0.01f);
    fleet.initialize(init);
    const double before =
        rbm::exact::meanLogLikelihood(fleet.readOut(), ds);
    fleet.train(ds, 30);
    const double after =
        rbm::exact::meanLogLikelihood(fleet.readOut(), ds);
    EXPECT_GT(after, before + 1.5);
}

TEST(Sampling, FantasyShapes)
{
    Rng rng(4);
    rbm::Rbm model(16, 8);
    model.initRandom(rng, 0.5f);
    const data::Dataset out = rbm::fantasySamples(model, 5, 10, rng);
    EXPECT_EQ(out.size(), 5u);
    EXPECT_EQ(out.dim(), 16u);
    const float *d = out.samples.data();
    for (std::size_t i = 0; i < out.samples.size(); ++i) {
        ASSERT_GE(d[i], 0.0f);
        ASSERT_LE(d[i], 1.0f);
    }
}

TEST(Sampling, ConditionalRespectsClamps)
{
    Rng rng(5);
    rbm::Rbm model(8, 4);
    model.initRandom(rng, 0.3f);
    std::vector<float> mask(8, -1.0f);
    mask[0] = 1.0f;
    mask[3] = 0.0f;
    const data::Dataset out =
        rbm::conditionalSamples(model, mask, 4, 20, rng);
    for (std::size_t s = 0; s < out.size(); ++s) {
        EXPECT_EQ(out.samples(s, 0), 1.0f);
        EXPECT_EQ(out.samples(s, 3), 0.0f);
    }
}

TEST(Sampling, AsciiImageDimensions)
{
    std::vector<float> img(16, 0.0f);
    img[0] = 1.0f;
    const std::string art = rbm::asciiImage(img.data(), 4);
    EXPECT_EQ(art.size(), 4u * 5u);  // 4 rows of 4 chars + newline
    EXPECT_EQ(art[0], '#');
    EXPECT_EQ(art[1], ' ');
}

TEST(Pipelines, TrainRbmAllEnginesLearn)
{
    const data::Dataset raw =
        data::makeGlyphs(data::digitsStyle(), 200, 9);
    const data::Dataset ds = data::binarizeThreshold(raw);
    for (eval::Trainer trainer :
         {eval::Trainer::CdK, eval::Trainer::GibbsSampler,
          eval::Trainer::Bgf}) {
        eval::TrainSpec spec;
        spec.trainer = trainer;
        spec.epochs = 2;
        spec.seed = 11;
        const rbm::Rbm model = eval::trainRbm(ds, 24, spec);
        // The trained model must assign the data lower free energy
        // than an untrained one.
        util::Rng rng(12);
        rbm::Rbm fresh(ds.dim(), 24);
        fresh.initRandom(rng);
        EXPECT_LT(model.meanFreeEnergy(ds.samples) -
                      model.freeEnergy(std::vector<float>(
                          ds.dim(), 0.5f).data()),
                  fresh.meanFreeEnergy(ds.samples) -
                      fresh.freeEnergy(std::vector<float>(
                          ds.dim(), 0.5f).data()))
            << "trainer " << static_cast<int>(trainer);
    }
}

TEST(Pipelines, EpochHookFires)
{
    const data::Dataset raw =
        data::makeGlyphs(data::digitsStyle(), 100, 10);
    const data::Dataset ds = data::binarizeThreshold(raw);
    int calls = 0;
    eval::TrainSpec spec;
    spec.epochs = 3;
    spec.onEpoch = [&](int, const rbm::Rbm &) { ++calls; };
    eval::trainRbm(ds, 16, spec);
    EXPECT_EQ(calls, 3);
}

TEST(Pipelines, FeaturizePreservesLabels)
{
    const data::Dataset raw =
        data::makeGlyphs(data::digitsStyle(), 50, 11);
    eval::TrainSpec spec;
    spec.epochs = 1;
    const rbm::Rbm model =
        eval::trainRbm(data::binarizeThreshold(raw), 12, spec);
    const data::Dataset feats = eval::featurize(model, raw);
    EXPECT_EQ(feats.dim(), 12u);
    EXPECT_EQ(feats.labels, raw.labels);
    EXPECT_EQ(feats.numClasses, raw.numClasses);
}
