/**
 * @file
 * Fault-tolerance tests: checkpoint integrity trailers, crash-safe
 * publish (via util::FaultInjector), registry last-known-good
 * degradation, canary-gated promote/rollback, and the serving path's
 * error containment.
 *
 * The overarching claims under test:
 *  - a crash at any publish instant leaves the old complete archive
 *    (or the new complete one), never a torn file that loads;
 *  - truncation anywhere in an archive is rejected by the trailer;
 *  - a serving registry degrades to its cached last-good model when
 *    the on-disk archive goes bad, and recovers once it is good again;
 *  - promote gates on the canary and rolls back without touching the
 *    incumbent;
 *  - none of this moves a single served bit: a request's output
 *    depends only on the model parameters and its own seed.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "engine/promote.hpp"
#include "engine/server.hpp"
#include "rbm/serialize.hpp"
#include "util/checksum.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

using namespace ising;
using engine::ModelRegistry;
using engine::Op;
using engine::Request;
using engine::Response;
using engine::Server;
using engine::StatusCode;
using rbm::Checkpoint;
using util::Rng;

namespace {

namespace fs = std::filesystem;

/**
 * An RBM that copies its input: strong diagonal weights latch each
 * hidden unit to its visible partner, so reconstruction error on any
 * binary probe is near zero.  The canary can tell it apart from a
 * model that ignores its input.
 */
rbm::Rbm
copyRbm(std::size_t dim, float w = 16.0f)
{
    rbm::Rbm model(dim, dim);
    for (std::size_t i = 0; i < dim; ++i) {
        model.weights()(i, i) = w;
        model.visibleBias()[i] = -w / 2;
        model.hiddenBias()[i] = -w / 2;
    }
    return model;
}

/** Zero-weight model: reconstructs 0.5 regardless of input. */
rbm::Rbm
blankRbm(std::size_t dim)
{
    return rbm::Rbm(dim, dim);
}

Checkpoint
makeCkpt(rbm::Rbm model, int epoch)
{
    Checkpoint ckpt;
    ckpt.meta.name = "ft";
    ckpt.meta.backend = "cd";
    ckpt.meta.seed = 5;
    ckpt.meta.epoch = epoch;
    ckpt.model = std::move(model);
    return ckpt;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool
sameBytes(const linalg::Matrix &a, const linalg::Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(float)) == 0;
}

class FaultToleranceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        util::FaultInjector::instance().reset();
        dir_ = (fs::temp_directory_path() /
                ("isingrbm_test_fault_" + std::to_string(::getpid()) +
                 "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void
    TearDown() override
    {
        util::FaultInjector::instance().reset();
        fs::remove_all(dir_);
    }

    std::string
    path(const std::string &file) const
    {
        return (fs::path(dir_) / file).string();
    }

    std::string dir_;
};

// ------------------------------------------------------ CRC-64 basics

TEST(Crc64, MatchesKnownVector)
{
    // CRC-64/XZ check value for "123456789".
    EXPECT_EQ(util::crc64("123456789"), 0x995DC9BBDF1939FAull);
    EXPECT_EQ(util::crc64Hex(0x995DC9BBDF1939FAull),
              "995dc9bbdf1939fa");
    std::uint64_t value = 0;
    ASSERT_TRUE(util::parseCrc64Hex("995dc9bbdf1939fa", value));
    EXPECT_EQ(value, 0x995DC9BBDF1939FAull);
    EXPECT_FALSE(util::parseCrc64Hex("995dc9bbdf1939f", value));
    EXPECT_FALSE(util::parseCrc64Hex("995dc9bbdf1939fax", value));
}

TEST(Crc64, IncrementalMatchesOneShot)
{
    const std::string text = "incremental checksum equivalence";
    util::Crc64 crc;
    for (char c : text)
        crc.update(&c, 1);
    EXPECT_EQ(crc.value(), util::crc64(text));
}

// --------------------------------------------- trailer write + verify

TEST_F(FaultToleranceTest, FileRoundTripCarriesVerifiedTrailer)
{
    const std::string file = path("m.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(6), 3), file);

    const std::string bytes = slurp(file);
    ASSERT_NE(bytes.find("trailer crc64\n"), std::string::npos);
    ASSERT_NE(bytes.find("checksum crc64 "), std::string::npos);

    const auto trailer = rbm::readArchiveTrailer(file);
    ASSERT_TRUE(trailer.has_value());
    const std::size_t at = bytes.rfind("checksum crc64 ");
    EXPECT_EQ(*trailer, util::crc64(
                            std::string_view(bytes).substr(0, at)));

    const Checkpoint back = rbm::loadCheckpointFile(file);
    EXPECT_EQ(back.meta.epoch, 3);
    EXPECT_EQ(back.meta.trailer, "crc64");
}

TEST_F(FaultToleranceTest, TruncationAtEveryLineBoundaryIsRejected)
{
    const std::string file = path("m.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(4), 1), file);
    const std::string bytes = slurp(file);

    // Every prefix ending at a line boundary -- including the one cut
    // exactly before the trailer line, which is structurally a
    // complete archive -- must fail to load.
    const std::string cut = path("cut.ckpt");
    std::size_t boundaries = 0;
    for (std::size_t at = bytes.find('\n'); at != std::string::npos;
         at = bytes.find('\n', at + 1)) {
        if (at + 1 == bytes.size())
            break;  // the full file, which does load
        spit(cut, bytes.substr(0, at + 1));
        std::string error;
        EXPECT_FALSE(rbm::tryLoadCheckpointFile(cut, &error).has_value())
            << "prefix of " << at + 1 << " bytes loaded";
        ++boundaries;
    }
    EXPECT_GT(boundaries, 5u);
}

TEST_F(FaultToleranceTest, CorruptedByteFailsTheChecksum)
{
    const std::string file = path("m.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(4), 1), file);
    std::string bytes = slurp(file);

    // Flip one digit inside the model payload: structure stays valid,
    // only the checksum can catch it.
    const std::size_t at = bytes.find("8\n");  // a weight digit: 16 -> 18
    ASSERT_NE(at, std::string::npos);
    std::string corrupt = bytes;
    corrupt[at] = '9';
    spit(file, corrupt);
    std::string error;
    EXPECT_FALSE(rbm::tryLoadCheckpointFile(file, &error).has_value());
    EXPECT_NE(error.find("checksum mismatch"), std::string::npos);
}

TEST_F(FaultToleranceTest, LegacyUncheksummedArchiveStillLoads)
{
    const std::string file = path("m.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(4), 7), file);
    std::string bytes = slurp(file);

    // Reconstruct what a pre-trailer writer produced: drop the
    // checksum line and the "trailer crc64" meta entry, and decrement
    // the declared meta count.
    const std::size_t tail = bytes.rfind("checksum crc64 ");
    ASSERT_NE(tail, std::string::npos);
    bytes.resize(tail);
    const std::size_t decl = bytes.find("trailer crc64\n");
    ASSERT_NE(decl, std::string::npos);
    bytes.erase(decl, std::string("trailer crc64\n").size());
    const std::size_t meta = bytes.find("section meta ");
    ASSERT_NE(meta, std::string::npos);
    const std::size_t countAt = meta + std::string("section meta ").size();
    const std::size_t countEnd = bytes.find('\n', countAt);
    const int count =
        std::stoi(bytes.substr(countAt, countEnd - countAt));
    bytes = bytes.substr(0, countAt) + std::to_string(count - 1) +
            bytes.substr(countEnd);

    spit(file, bytes);
    const auto back = rbm::tryLoadCheckpointFile(file);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->meta.epoch, 7);
    EXPECT_EQ(back->meta.trailer, "");
    EXPECT_FALSE(rbm::readArchiveTrailer(file).has_value());
}

// ------------------------------------------------- crash-safe publish

TEST_F(FaultToleranceTest, CrashBeforeRenameLeavesOldArchiveIntact)
{
    // Default (fork) death-test style: the forked child inherits the
    // written archive and the injector configuration stays in the
    // child.  This test runs before any test that spawns pool threads.
    const std::string file = path("m.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(4), 1), file);
    const std::string before = slurp(file);

    for (const char *point :
         {"checkpoint.before-write", "checkpoint.after-temp-write",
          "checkpoint.before-rename"}) {
        EXPECT_EXIT(
            {
                util::FaultInjector::instance().reset();
                util::FaultInjector::instance().configure(
                    std::string("crash:") + point);
                rbm::saveCheckpoint(makeCkpt(copyRbm(4), 2), file);
            },
            ::testing::ExitedWithCode(util::FaultInjector::kCrashExitCode),
            "")
            << point;
        // The old archive is untouched and still resumable.
        EXPECT_EQ(slurp(file), before) << point;
        const auto back = rbm::tryLoadCheckpointFile(file);
        ASSERT_TRUE(back.has_value()) << point;
        EXPECT_EQ(back->meta.epoch, 1) << point;
    }

    // A crash *after* the rename leaves the new complete archive.
    EXPECT_EXIT(
        {
            util::FaultInjector::instance().reset();
            util::FaultInjector::instance().configure(
                "crash:checkpoint.after-rename");
            rbm::saveCheckpoint(makeCkpt(copyRbm(4), 2), file);
        },
        ::testing::ExitedWithCode(util::FaultInjector::kCrashExitCode),
        "");
    const auto back = rbm::tryLoadCheckpointFile(file);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->meta.epoch, 2);
}

TEST_F(FaultToleranceTest, LiveCanaryCrashMatrixKeepsArchiveAndBytes)
{
    // Kill the server at every crash point of the live-canary path --
    // staging, the gate's promote decision, and both sides of the
    // archive publish -- while live traffic flows.  At each instant
    // the on-disk archive must be either the old complete incumbent or
    // the new complete candidate (never torn), and a restarted server
    // must serve the exact baseline bytes.  Fork-style death tests:
    // each leg builds registry + server (and its worker pool) in the
    // forked child, so this must run before any test that spawns pool
    // threads in the parent process.
    constexpr std::size_t kDim = 6;
    {
        ModelRegistry setup(dir_);
        setup.put("m", makeCkpt(copyRbm(kDim), 1));
    }
    const std::string archive = ModelRegistry(dir_).pathFor("m");
    const std::string before = slurp(archive);
    // The candidate carries the incumbent's exact weights (epoch 2),
    // so served bytes are invariant whichever archive survives.
    const std::string cand = path("cand.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(kDim), 2), cand);

    const auto corpus = [] {
        std::vector<Request> live;
        for (std::size_t q = 0; q < 8; ++q) {
            Request req;
            req.model = "m";
            req.op = Op::Reconstruct;
            req.seed = 1000 + q;
            req.input = engine::canaryProbe(2, kDim, req.seed);
            live.push_back(std::move(req));
        }
        return live;
    };

    const auto liveLoop = [&](const char *point) {
        util::FaultInjector::instance().reset();
        util::FaultInjector::instance().configure(
            std::string("crash:") + point);
        ModelRegistry registry(dir_);
        if (!registry.stageCandidate("m", cand).ok())
            return;  // only crash:canary.stage dies in here
        engine::ServerConfig config;
        config.canary.model = "m";
        config.canary.fraction = 1.0;
        config.canary.minShadows = 2;
        Server server(registry, config);
        for (Request &req : corpus())
            server.serve({std::move(req)});
    };

    // Before the publish instant the incumbent archive must be
    // byte-for-byte untouched...
    for (const char *point : {"canary.stage", "canary.before-promote",
                              "promote.before-publish"}) {
        EXPECT_EXIT(liveLoop(point),
                    ::testing::ExitedWithCode(
                        util::FaultInjector::kCrashExitCode),
                    "")
            << point;
        EXPECT_EQ(slurp(archive), before) << point;
        const auto back = rbm::tryLoadCheckpointFile(archive);
        ASSERT_TRUE(back.has_value()) << point;
        EXPECT_EQ(back->meta.epoch, 1) << point;
    }

    // ...and after it the new complete archive must be what loads.
    for (const char *point :
         {"promote.after-publish", "canary.after-promote"}) {
        EXPECT_EXIT(liveLoop(point),
                    ::testing::ExitedWithCode(
                        util::FaultInjector::kCrashExitCode),
                    "")
            << point;
        const auto back = rbm::tryLoadCheckpointFile(archive);
        ASSERT_TRUE(back.has_value()) << point;
        EXPECT_EQ(back->meta.epoch, 2) << point;
        spit(archive, before);  // rewind for the next leg
    }

    // All crash legs done (thread-spawning is safe from here on).
    // The canary-off baseline...
    std::vector<Response> expected;
    {
        ModelRegistry fresh(dir_);
        Server plain(fresh);
        expected = plain.serve(corpus());
    }
    // ...is exactly what a restarted server serves while the same
    // live loop runs to completion and promotes.
    util::FaultInjector::instance().reset();
    ModelRegistry recovered(dir_);
    ASSERT_TRUE(recovered.stageCandidate("m", cand).ok());
    engine::ServerConfig config;
    config.canary.model = "m";
    config.canary.fraction = 1.0;
    config.canary.minShadows = 2;
    Server server(recovered, config);
    auto live = corpus();
    for (std::size_t q = 0; q < live.size(); ++q) {
        const auto got = server.serve({std::move(live[q])});
        ASSERT_TRUE(got[0].status.ok()) << got[0].status.toString();
        EXPECT_TRUE(sameBytes(got[0].output, expected[q].output)) << q;
    }
    EXPECT_GE(server.stats().canaryPromotions, 1u);
    const auto promoted = rbm::tryLoadCheckpointFile(archive);
    ASSERT_TRUE(promoted.has_value());
    EXPECT_EQ(promoted->meta.epoch, 2);
}

TEST_F(FaultToleranceTest, InjectedTruncationProducesARejectedArchive)
{
    const std::string file = path("torn.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(4), 1), file);
    const std::uintmax_t full = fs::file_size(file);

    util::FaultInjector::instance().configure(
        "truncate:torn.ckpt=" + std::to_string(full / 2));
    rbm::saveCheckpoint(makeCkpt(copyRbm(4), 2), file);
    util::FaultInjector::instance().reset();

    EXPECT_EQ(fs::file_size(file), full / 2);
    std::string error;
    EXPECT_FALSE(rbm::tryLoadCheckpointFile(file, &error).has_value());
    EXPECT_FALSE(error.empty());
}

// --------------------------------- registry degradation and recovery

TEST_F(FaultToleranceTest, RegistryFallsBackToLastGoodAndRecovers)
{
    // 1 ms backoff so the test can cross the retry window instantly.
    ModelRegistry registry(dir_, nullptr, {},
                           engine::RegistryConfig{1, 4});
    registry.put("m", makeCkpt(copyRbm(5), 1));
    const std::string file = registry.pathFor("m");

    auto first = registry.tryGet("m");
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value()->meta().epoch, 1);

    // The archive goes bad on disk (torn overwrite).
    spit(file, slurp(file).substr(0, 40));
    for (int i = 0; i < 3; ++i) {
        auto degraded = registry.tryGet("m");
        ASSERT_TRUE(degraded.ok()) << "fallback get " << i;
        EXPECT_EQ(degraded.value()->meta().epoch, 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GE(registry.stats().reloadFallbacks, 1u);
    EXPECT_EQ(registry.stats().quarantined, 1u);

    // A good archive reappears: the registry recovers by itself once
    // the backoff window lets it retry.
    rbm::saveCheckpoint(makeCkpt(copyRbm(5), 9), file);
    std::shared_ptr<const engine::Model> recovered;
    for (int i = 0; i < 100 && !recovered; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        auto result = registry.tryGet("m");
        ASSERT_TRUE(result.ok());
        if (result.value()->meta().epoch == 9)
            recovered = result.value();
    }
    ASSERT_TRUE(recovered != nullptr);
    EXPECT_EQ(registry.stats().quarantined, 0u);
}

TEST_F(FaultToleranceTest, ColdLoadOfCorruptArchiveIsAnError)
{
    ModelRegistry registry(dir_, nullptr, {},
                           engine::RegistryConfig{1, 4});
    spit(path("bad.ckpt"), "isingrbm-checkpoint v2\ngarbage");
    auto result = registry.tryGet("bad");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::DataLoss);
    EXPECT_GE(registry.stats().loadFailures, 1u);

    auto missing = registry.tryGet("nope");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), StatusCode::NotFound);
}

TEST_F(FaultToleranceTest, SameSizeSameMtimeOverwriteIsStillDetected)
{
    // The stamp race: overwrite the served archive with a different
    // model of identical byte size, then force the mtime back, so
    // (mtime, size) cannot tell them apart -- only the trailer can.
    ModelRegistry registry(dir_);
    rbm::Rbm a(3, 3), b(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j) {
            a.weights()(i, j) = 0.25f;
            b.weights()(i, j) = 0.75f;
        }
    registry.put("m", makeCkpt(a, 1));
    const std::string file = registry.pathFor("m");
    const auto mtime = fs::last_write_time(file);
    ASSERT_TRUE(registry.tryGet("m").ok());

    const std::string other = path("other.ckpt");
    Checkpoint overwrite = makeCkpt(b, 1);
    overwrite.meta.name = "m";  // match put()'s stamped name byte-for-byte
    rbm::saveCheckpoint(overwrite, other);
    ASSERT_EQ(fs::file_size(other), fs::file_size(file))
        << "test premise: archives must be byte-size-identical";
    fs::rename(other, file);
    fs::last_write_time(file, mtime);

    auto swapped = registry.tryGet("m");
    ASSERT_TRUE(swapped.ok());
    const auto &model =
        std::get<rbm::Rbm>(swapped.value()->checkpoint().model);
    EXPECT_FLOAT_EQ(model.weights()(0, 0), 0.75f);
}

// --------------------------------------------- server error delivery

TEST_F(FaultToleranceTest, BadRequestsFailTheirFutureNotTheProcess)
{
    ModelRegistry registry(dir_);
    registry.put("m", makeCkpt(copyRbm(4), 1));
    Server server(registry);

    Request missing;
    missing.model = "ghost";
    missing.op = Op::Featurize;
    missing.input = linalg::Matrix(1, 4);
    Response r1 = server.serve({std::move(missing)}).front();
    EXPECT_EQ(r1.status.code(), StatusCode::NotFound);

    Request badWidth;
    badWidth.model = "m";
    badWidth.op = Op::Featurize;
    badWidth.input = linalg::Matrix(1, 7);
    Response r2 = server.serve({std::move(badWidth)}).front();
    EXPECT_EQ(r2.status.code(), StatusCode::InvalidArgument);

    Request badCount;
    badCount.model = "m";
    badCount.op = Op::Sample;
    badCount.count = 0;
    Response r3 = server.serve({std::move(badCount)}).front();
    EXPECT_EQ(r3.status.code(), StatusCode::InvalidArgument);

    // The server is still alive and serving.
    Request good;
    good.model = "m";
    good.op = Op::Featurize;
    good.input = engine::canaryProbe(2, 4, 11);
    Response r4 = server.serve({std::move(good)}).front();
    EXPECT_TRUE(r4.status.ok());
    EXPECT_EQ(r4.output.rows(), 2u);
    EXPECT_EQ(server.stats().rejected, 3u);
    EXPECT_EQ(server.stats().rows, 2u);
}

TEST_F(FaultToleranceTest, RejectedRequestDoesNotPerturbCoalescedBits)
{
    ModelRegistry registry(dir_);
    registry.put("m", makeCkpt(copyRbm(6), 1));

    auto reconstruct = [](std::uint64_t seed) {
        Request req;
        req.model = "m";
        req.op = Op::Reconstruct;
        req.input = engine::canaryProbe(3, 6, 21);
        req.seed = seed;
        return req;
    };

    Server clean(registry);
    const Response alone = clean.serve({reconstruct(77)}).front();
    ASSERT_TRUE(alone.status.ok());

    Server noisy(registry);
    Request bad;
    bad.model = "m";
    bad.op = Op::Featurize;
    bad.input = linalg::Matrix(2, 9);
    auto mixed = noisy.serve({reconstruct(77), std::move(bad)});
    ASSERT_TRUE(mixed[0].status.ok());
    EXPECT_FALSE(mixed[1].status.ok());
    EXPECT_EQ(alone.output, mixed[0].output);
}

// -------------------------------------------------- promote/rollback

TEST_F(FaultToleranceTest, PromoteGatesOnTheCanary)
{
    ModelRegistry registry(dir_);
    registry.put("m", makeCkpt(copyRbm(6), 1));

    // A worse candidate (ignores its input) is rolled back.
    const std::string bad = path("bad-candidate.ckpt");
    rbm::saveCheckpoint(makeCkpt(blankRbm(6), 2), bad);
    auto rolled = registry.promote("m", bad);
    ASSERT_TRUE(rolled.ok());
    EXPECT_FALSE(rolled.value().promoted);
    EXPECT_TRUE(rolled.value().canaryRan);
    EXPECT_GT(rolled.value().candidateError,
              rolled.value().incumbentError);
    // The incumbent keeps serving, untouched.
    auto still = registry.tryGet("m");
    ASSERT_TRUE(still.ok());
    EXPECT_EQ(still.value()->meta().epoch, 1);

    // An equivalent candidate passes and swaps in atomically.
    const std::string good = path("good-candidate.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(6), 2), good);
    auto promoted = registry.promote("m", good);
    ASSERT_TRUE(promoted.ok());
    EXPECT_TRUE(promoted.value().promoted);
    auto now = registry.tryGet("m");
    ASSERT_TRUE(now.ok());
    EXPECT_EQ(now.value()->meta().epoch, 2);
    // The published archive verifies end to end.
    EXPECT_TRUE(
        rbm::tryLoadCheckpointFile(registry.pathFor("m")).has_value());

    const auto stats = registry.stats();
    EXPECT_EQ(stats.promotions, 1u);
    EXPECT_EQ(stats.rollbacks, 1u);
}

TEST_F(FaultToleranceTest, PromoteRejectsTornCandidate)
{
    ModelRegistry registry(dir_);
    registry.put("m", makeCkpt(copyRbm(6), 1));

    const std::string torn = path("torn-candidate.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(6), 2), torn);
    spit(torn, slurp(torn).substr(0, 60));

    auto result = registry.promote("m", torn);
    EXPECT_FALSE(result.ok());
    auto still = registry.tryGet("m");
    ASSERT_TRUE(still.ok());
    EXPECT_EQ(still.value()->meta().epoch, 1);
    EXPECT_EQ(registry.stats().rollbacks, 1u);
}

TEST_F(FaultToleranceTest, PromoteWithNoIncumbentSkipsTheCanary)
{
    ModelRegistry registry(dir_);
    const std::string cand = path("cand.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(5), 3), cand);
    auto result = registry.promote("fresh", cand);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().promoted);
    EXPECT_FALSE(result.value().canaryRan);
    auto model = registry.tryGet("fresh");
    ASSERT_TRUE(model.ok());
    EXPECT_EQ(model.value()->meta().epoch, 3);
}

TEST_F(FaultToleranceTest, MidStreamPromoteKeepsServedBitsIdentical)
{
    // Requests served before a promote must match a never-swapped run
    // bit for bit, and requests served after must match a run that
    // always had the new model: the swap moves *when* a model serves,
    // never what bits a request produces.
    const auto probe = engine::canaryProbe(3, 6, 33);
    auto reconstruct = [&](std::uint64_t seed) {
        Request req;
        req.model = "m";
        req.op = Op::Reconstruct;
        req.input = probe;
        req.seed = seed;
        return req;
    };

    // Static baselines: one registry pinned to each model.
    ModelRegistry oldOnly(dir_ + "_old");
    oldOnly.put("m", makeCkpt(copyRbm(6, 16.0f), 1));
    Server oldServer(oldOnly);
    const Response oldBits = oldServer.serve({reconstruct(91)}).front();

    ModelRegistry newOnly(dir_ + "_new");
    newOnly.put("m", makeCkpt(copyRbm(6, 24.0f), 2));
    Server newServer(newOnly);
    const Response newBits = newServer.serve({reconstruct(91)}).front();

    // The hot-swapped run.
    ModelRegistry registry(dir_);
    registry.put("m", makeCkpt(copyRbm(6, 16.0f), 1));
    Server server(registry);
    const Response before = server.serve({reconstruct(91)}).front();

    const std::string cand = path("cand.ckpt");
    rbm::saveCheckpoint(makeCkpt(copyRbm(6, 24.0f), 2), cand);
    auto promoted = registry.promote("m", cand);
    ASSERT_TRUE(promoted.ok());
    ASSERT_TRUE(promoted.value().promoted);

    const Response after = server.serve({reconstruct(91)}).front();

    ASSERT_TRUE(before.status.ok());
    ASSERT_TRUE(after.status.ok());
    EXPECT_EQ(before.output, oldBits.output);
    EXPECT_EQ(after.output, newBits.output);

    fs::remove_all(dir_ + "_old");
    fs::remove_all(dir_ + "_new");
}

} // namespace
