/**
 * @file
 * Tests for Gibbs chains and the CD-k / PCD trainers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"
#include "rbm/cd_trainer.hpp"
#include "rbm/exact.hpp"
#include "rbm/gibbs.hpp"

using namespace ising::rbm;
using ising::util::Rng;

namespace {

/** Striped-pattern dataset small enough for exact evaluation. */
ising::data::Dataset
stripeData(std::size_t rows, std::size_t dim)
{
    ising::data::Dataset ds;
    ds.samples.reset(rows, dim);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t i = 0; i < dim; ++i)
            ds.samples(r, i) = (r % 2 == i % 2) ? 1.0f : 0.0f;
    return ds;
}

} // namespace

TEST(GibbsChain, StatesAreBinary)
{
    Rng rng(1);
    Rbm model(10, 6);
    model.initRandom(rng, 0.5f);
    GibbsChain chain(model, rng);
    chain.step(3);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_TRUE(chain.visible()[i] == 0.0f ||
                    chain.visible()[i] == 1.0f);
    for (std::size_t j = 0; j < 6; ++j)
        EXPECT_TRUE(chain.hidden()[j] == 0.0f ||
                    chain.hidden()[j] == 1.0f);
}

TEST(GibbsChain, ResetClampsVisible)
{
    Rng rng(2);
    Rbm model(4, 3);
    model.initRandom(rng, 0.1f);
    GibbsChain chain(model, rng);
    const float v0[4] = {1, 0, 1, 0};
    chain.reset(v0);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(chain.visible()[i], v0[i]);
}

TEST(GibbsChain, UniformModelSamplesUniformly)
{
    // Zero weights/biases: every unit is a fair coin at stationarity.
    Rng rng(3);
    Rbm model(6, 4);
    GibbsChain chain(model, rng);
    double mean = 0.0;
    const int steps = 4000;
    for (int s = 0; s < steps; ++s) {
        chain.step(1);
        mean += chain.visible()[0];
    }
    EXPECT_NEAR(mean / steps, 0.5, 0.05);
}

TEST(GibbsChain, ChainTracksModelBias)
{
    // Strong positive visible bias pushes the marginal toward one.
    Rng rng(4);
    Rbm model(3, 2);
    for (std::size_t i = 0; i < 3; ++i)
        model.visibleBias()[i] = 3.0f;
    GibbsChain chain(model, rng);
    double mean = 0.0;
    const int steps = 2000;
    for (int s = 0; s < steps; ++s) {
        chain.step(1);
        mean += chain.visible()[0];
    }
    EXPECT_GT(mean / steps, 0.9);
}

TEST(GibbsChain, SetHiddenOverridesState)
{
    Rng rng(5);
    Rbm model(4, 3);
    GibbsChain chain(model, rng);
    ising::linalg::Vector h(3);
    h[0] = 1.0f;
    chain.setHidden(h);
    EXPECT_EQ(chain.hidden()[0], 1.0f);
    EXPECT_EQ(chain.hidden()[1], 0.0f);
}

TEST(CdTrainer, ImprovesExactLikelihood)
{
    Rng rng(6);
    const auto ds = stripeData(40, 10);
    Rbm model(10, 4);
    model.initRandom(rng, 0.01f);
    const double before = exact::meanLogLikelihood(model, ds);
    CdConfig cfg;
    cfg.learningRate = 0.2;
    cfg.k = 1;
    cfg.batchSize = 10;
    CdTrainer trainer(model, cfg, rng);
    for (int epoch = 0; epoch < 60; ++epoch)
        trainer.trainEpoch(ds);
    const double after = exact::meanLogLikelihood(model, ds);
    EXPECT_GT(after, before + 1.0);
}

TEST(CdTrainer, ReconstructionErrorDrops)
{
    Rng rng(7);
    const auto ds = stripeData(60, 16);
    Rbm model(16, 8);
    model.initRandom(rng, 0.01f);
    CdConfig cfg;
    cfg.learningRate = 0.1;
    cfg.batchSize = 10;
    CdTrainer trainer(model, cfg, rng);
    const double before = trainer.reconstructionError(ds);
    for (int epoch = 0; epoch < 40; ++epoch)
        trainer.trainEpoch(ds);
    const double after = trainer.reconstructionError(ds);
    EXPECT_LT(after, before * 0.8);
}

TEST(CdTrainer, CountsUpdates)
{
    Rng rng(8);
    const auto ds = stripeData(20, 8);
    Rbm model(8, 4);
    model.initRandom(rng, 0.01f);
    CdConfig cfg;
    cfg.batchSize = 5;
    CdTrainer trainer(model, cfg, rng);
    trainer.trainEpoch(ds);
    EXPECT_EQ(trainer.updatesDone(), 4u);
}

TEST(CdTrainer, PersistentModeRuns)
{
    Rng rng(9);
    const auto ds = stripeData(30, 12);
    Rbm model(12, 5);
    model.initRandom(rng, 0.01f);
    CdConfig cfg;
    cfg.persistent = true;
    cfg.numParticles = 4;
    cfg.learningRate = 0.05;
    CdTrainer trainer(model, cfg, rng);
    const double before = exact::meanLogLikelihood(model, ds);
    for (int epoch = 0; epoch < 40; ++epoch)
        trainer.trainEpoch(ds);
    EXPECT_GT(exact::meanLogLikelihood(model, ds), before);
}

TEST(CdTrainer, HigherKIsNotWorse)
{
    // CD-10 should match or beat CD-1 in exact likelihood on a small
    // problem given the same budget of epochs.
    const auto ds = stripeData(40, 10);
    auto runWithK = [&](int k) {
        Rng rng(10);
        Rbm model(10, 4);
        model.initRandom(rng, 0.01f);
        CdConfig cfg;
        cfg.k = k;
        cfg.learningRate = 0.2;
        cfg.batchSize = 10;
        CdTrainer trainer(model, cfg, rng);
        for (int epoch = 0; epoch < 50; ++epoch)
            trainer.trainEpoch(ds);
        return exact::meanLogLikelihood(model, ds);
    };
    const double ll1 = runWithK(1);
    const double ll10 = runWithK(10);
    EXPECT_GT(ll10, ll1 - 0.5);
}

TEST(CdTrainer, MomentumAndDecayStable)
{
    Rng rng(11);
    const auto ds = stripeData(30, 10);
    Rbm model(10, 4);
    model.initRandom(rng, 0.01f);
    CdConfig cfg;
    cfg.momentum = 0.9;
    cfg.weightDecay = 1e-3;
    cfg.learningRate = 0.05;
    CdTrainer trainer(model, cfg, rng);
    for (int epoch = 0; epoch < 30; ++epoch)
        trainer.trainEpoch(ds);
    const float *w = model.weights().data();
    for (std::size_t i = 0; i < model.weights().size(); ++i) {
        ASSERT_FALSE(std::isnan(w[i]));
        ASSERT_LT(std::fabs(w[i]), 20.0f);
    }
}

TEST(CdTrainer, MeanFieldPositiveStatsOptionLearns)
{
    Rng rng(12);
    const auto ds = stripeData(40, 10);
    Rbm model(10, 4);
    model.initRandom(rng, 0.01f);
    CdConfig cfg;
    cfg.sampleHiddenMeans = true;
    cfg.learningRate = 0.2;
    cfg.batchSize = 10;
    CdTrainer trainer(model, cfg, rng);
    const double before = exact::meanLogLikelihood(model, ds);
    for (int epoch = 0; epoch < 40; ++epoch)
        trainer.trainEpoch(ds);
    EXPECT_GT(exact::meanLogLikelihood(model, ds), before + 1.0);
}

/** Parameter sweep: CD learns across a range of hidden sizes. */
class CdHiddenSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(CdHiddenSweep, Learns)
{
    const std::size_t hidden = GetParam();
    Rng rng(100 + hidden);
    const auto ds = stripeData(40, 12);
    Rbm model(12, hidden);
    model.initRandom(rng, 0.01f);
    CdConfig cfg;
    cfg.learningRate = 0.2;
    cfg.batchSize = 8;
    CdTrainer trainer(model, cfg, rng);
    const double before = exact::meanLogLikelihood(model, ds);
    for (int epoch = 0; epoch < 40; ++epoch)
        trainer.trainEpoch(ds);
    EXPECT_GT(exact::meanLogLikelihood(model, ds), before + 0.5)
        << "hidden=" << hidden;
}

INSTANTIATE_TEST_SUITE_P(HiddenSizes, CdHiddenSweep,
                         ::testing::Values(2, 4, 8, 16));
