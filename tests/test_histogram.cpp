/**
 * @file
 * util::Histogram tests: exact small-value buckets, log-bucket
 * boundaries, merge associativity, and quantile edge cases.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/histogram.hpp"
#include "util/rng.hpp"

using ising::util::Histogram;
using ising::util::Rng;

namespace {

constexpr std::uint64_t kSub = 1ull << Histogram::kSubBits;

} // namespace

TEST(Histogram, EmptyIsAllZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.quantile(0.0), 0u);
    EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(Histogram, SmallValuesAreExact)
{
    // Below one octave of sub-buckets every value has its own bucket,
    // so quantiles are exact order statistics (lower-bound flavor).
    Histogram h;
    for (std::uint64_t v = 0; v < kSub; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), kSub);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), kSub - 1);
    EXPECT_EQ(h.quantile(0.5), kSub / 2 - 1);
    EXPECT_EQ(h.quantile(1.0), kSub - 1);
    EXPECT_EQ(h.quantile(0.0), 0u);
    EXPECT_EQ(h.sum(), kSub * (kSub - 1) / 2);
}

TEST(Histogram, BucketBoundariesSeparatePowersOfTwo)
{
    // 2^k and 2^k - 1 must never share a bucket: record both around
    // several octaves and check the quantile walk can tell them apart.
    for (int k = Histogram::kSubBits; k < 62; k += 7) {
        Histogram h;
        const std::uint64_t edge = 1ull << k;
        h.record(edge - 1);
        h.record(edge);
        // Two samples, two buckets: the 1/2 quantile must be the lower
        // bucket's value, the full quantile the upper one's.
        EXPECT_EQ(h.quantile(0.5), edge - 1) << "k=" << k;
        EXPECT_EQ(h.quantile(1.0), edge) << "k=" << k;
    }
}

TEST(Histogram, RelativeErrorBounded)
{
    // A bucket's lower bound is within 1/2^kSubBits of any value it
    // holds: quantile() of a single sample lands within ~3%.
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t v = rng.next() >> (i % 40);
        Histogram h;
        h.record(v);
        const std::uint64_t q = h.quantile(0.5);
        EXPECT_LE(q, v);
        EXPECT_GE(static_cast<double>(q),
                  static_cast<double>(v) * (1.0 - 1.0 / kSub) - 1.0);
    }
}

TEST(Histogram, QuantileEdgeCases)
{
    Histogram h;
    h.record(1000);
    // Single sample: every quantile is that sample (clamped to
    // min/max, which are tracked exactly).
    EXPECT_EQ(h.quantile(-1.0), 1000u);
    EXPECT_EQ(h.quantile(0.0), 1000u);
    EXPECT_EQ(h.quantile(0.5), 1000u);
    EXPECT_EQ(h.quantile(1.0), 1000u);
    EXPECT_EQ(h.quantile(2.0), 1000u);

    // Heavily skewed: p99 must sit in the tail, not the body.
    Histogram skew;
    for (int i = 0; i < 99; ++i)
        skew.record(10);
    skew.record(1u << 20);
    EXPECT_EQ(skew.quantile(0.5), 10u);
    EXPECT_EQ(skew.quantile(0.99), 10u);   // rank 99 of 100
    EXPECT_EQ(skew.quantile(0.995), 1u << 20);
    EXPECT_EQ(skew.quantile(1.0), 1u << 20);
}

TEST(Histogram, MergeMatchesCombinedRecording)
{
    Rng rng(42);
    std::vector<std::uint64_t> values;
    Histogram parts[3];
    Histogram whole;
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t v = rng.next() >> (rng.next() % 50);
        values.push_back(v);
        parts[i % 3].record(v);
        whole.record(v);
    }
    Histogram merged;
    merged.merge(parts[0]);
    merged.merge(parts[1]);
    merged.merge(parts[2]);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_EQ(merged.sum(), whole.sum());
    EXPECT_EQ(merged.min(), whole.min());
    EXPECT_EQ(merged.max(), whole.max());
    for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0})
        EXPECT_EQ(merged.quantile(q), whole.quantile(q)) << "q=" << q;
}

TEST(Histogram, MergeIsAssociativeAndCommutative)
{
    Rng rng(5);
    Histogram a, b, c;
    for (int i = 0; i < 500; ++i) {
        a.record(rng.next() >> 30);
        b.record(rng.next() >> 45);
        c.record(rng.next() >> 10);
    }
    // (a + b) + c
    Histogram left;
    left.merge(a);
    left.merge(b);
    left.merge(c);
    // a + (b + c), built in a different order
    Histogram bc;
    bc.merge(c);
    bc.merge(b);
    Histogram right;
    right.merge(bc);
    right.merge(a);
    EXPECT_EQ(left.count(), right.count());
    EXPECT_EQ(left.sum(), right.sum());
    for (const double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0})
        EXPECT_EQ(left.quantile(q), right.quantile(q)) << "q=" << q;
}

TEST(Histogram, MergeWithEmptyIsIdentity)
{
    Histogram a;
    a.record(123);
    a.record(456);
    Histogram empty;
    Histogram merged;
    merged.merge(a);
    merged.merge(empty);
    EXPECT_EQ(merged.count(), 2u);
    EXPECT_EQ(merged.min(), a.min());
    EXPECT_EQ(merged.max(), a.max());

    Histogram other;
    other.merge(empty);
    EXPECT_EQ(other.count(), 0u);
    EXPECT_EQ(other.quantile(0.5), 0u);
}

TEST(Histogram, ClearForgets)
{
    Histogram h;
    h.record(77);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    h.record(5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.quantile(0.5), 5u);
}

TEST(Histogram, HugeValuesDoNotOverflowBuckets)
{
    Histogram h;
    h.record(~0ull);
    h.record(1ull << 63);
    h.record(0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), ~0ull);
    EXPECT_GE(h.quantile(0.9), 1ull << 63);
}
