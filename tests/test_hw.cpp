/**
 * @file
 * Tests for the hardware cost models: Table 2/3 reproduction and the
 * Fig. 5/6 model-shape invariants.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hw/components.hpp"
#include "hw/devices.hpp"
#include "hw/energy.hpp"
#include "hw/timing.hpp"
#include "util/math.hpp"

using namespace ising::hw;

TEST(Table2, GibbsTotalsMatchPaperAt400)
{
    const ChipBudget b = squareArrayBudget(Arch::GibbsSampler, 400);
    EXPECT_NEAR(b.totalAreaMm2, 0.065, 0.005);
    EXPECT_NEAR(b.totalPowerMw, 60.5, 1.0);
}

TEST(Table2, BgfTotalsMatchPaperAt400)
{
    const ChipBudget b = squareArrayBudget(Arch::Bgf, 400);
    EXPECT_NEAR(b.totalAreaMm2, 1.32, 0.02);
    EXPECT_NEAR(b.totalPowerMw, 66.5, 1.0);
}

TEST(Table2, BgfTotalsMatchPaperAt1600)
{
    // Paper total: 21.5 mm^2, which includes the inconsistent 0.96
    // comparator row; with the linear comparator scaling used here the
    // total lands at ~20.6 (CU row matches the paper's 20.5 exactly).
    const ChipBudget b = squareArrayBudget(Arch::Bgf, 1600);
    EXPECT_NEAR(b.totalAreaMm2, 21.0, 1.0);
    EXPECT_NEAR(b.totalPowerMw, 700.0, 15.0);
    EXPECT_NEAR(b.units[0].areaMm2, 20.5, 0.1);
}

TEST(Table2, GibbsTotalsMatchPaperAt1600)
{
    const ChipBudget b = squareArrayBudget(Arch::GibbsSampler, 1600);
    // Paper: 1.5 mm^2, 601.96 mW (with linear comparator scaling the
    // area lands slightly lower; see the header note on the 0.96 typo).
    EXPECT_NEAR(b.totalPowerMw, 602.0, 10.0);
    EXPECT_NEAR(b.totalAreaMm2, 0.62, 0.95);  // within the typo window
}

TEST(Table2, CouplerAreaQuadraticNodeUnitsLinear)
{
    const ChipBudget b400 = squareArrayBudget(Arch::Bgf, 400);
    const ChipBudget b800 = squareArrayBudget(Arch::Bgf, 800);
    EXPECT_NEAR(b800.units[0].areaMm2 / b400.units[0].areaMm2, 4.0, 1e-9);
    EXPECT_NEAR(b800.units[1].areaMm2 / b400.units[1].areaMm2, 2.0, 1e-9);
}

TEST(Table2, BgfCouplerLargerThanGibbsCoupler)
{
    // The training circuit makes the BGF CU ~40x larger in area.
    const UnitCosts c;
    EXPECT_GT(c.cuBgfAreaMm2 / c.cuGibbsAreaMm2, 30.0);
    EXPECT_LT(c.cuBgfAreaMm2 / c.cuGibbsAreaMm2, 50.0);
}

TEST(Table2, BipartiteBudgetUsesMnCouplers)
{
    const ChipBudget b = bipartiteBudget(Arch::Bgf, 784, 200);
    EXPECT_EQ(b.numCouplers, 784u * 200u);
    EXPECT_EQ(b.numNodes, 984u);
}

TEST(Table3, MatchesPaperRows)
{
    const auto rows = table3Metrics(1600);
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_NEAR(rows[0].topsPerMm2, 1.16, 0.05);   // TPU v1
    EXPECT_NEAR(rows[0].topsPerW, 2.30, 0.05);
    EXPECT_NEAR(rows[1].topsPerMm2, 1.91, 0.05);   // TPU v4
    EXPECT_NEAR(rows[1].topsPerW, 1.62, 0.05);
    EXPECT_NEAR(rows[2].topsPerMm2, 38.3, 0.01);   // TIMELY
    EXPECT_NEAR(rows[3].topsPerMm2, 119.0, 10.0);  // BGF
    EXPECT_NEAR(rows[3].topsPerW, 3657.0, 300.0);
}

TEST(Fig5, PerBenchmarkOrderingHolds)
{
    const TimingModel timing;
    const DeviceModel tpu = tpuV1();
    const DeviceModel gpu = teslaT4();
    for (const Workload &w : figure5Workloads()) {
        const double tBgf = timing.bgfTime(w).total();
        const double tGs = timing.gsTime(tpu, w).total();
        const double tTpu = timing.digitalTime(tpu, w).total();
        const double tGpu = timing.digitalTime(gpu, w).total();
        EXPECT_LT(tBgf, tGs) << w.name;
        EXPECT_LT(tGs, tTpu) << w.name;
        EXPECT_LT(tTpu, tGpu) << w.name;
    }
}

TEST(Fig5, GeomeanSpeedupsNearPaper)
{
    const TimingModel timing;
    const DeviceModel tpu = tpuV1();
    std::vector<double> bgfSpeedups, gsSpeedups;
    for (const Workload &w : figure5Workloads()) {
        const double tTpu = timing.digitalTime(tpu, w).total();
        bgfSpeedups.push_back(tTpu / timing.bgfTime(w).total());
        gsSpeedups.push_back(tTpu / timing.gsTime(tpu, w).total());
    }
    const double bgfGm = ising::util::geometricMean(bgfSpeedups);
    const double gsGm = ising::util::geometricMean(gsSpeedups);
    // Paper: 29x and 2x geomean.  Accept the same ballpark.
    EXPECT_GT(bgfGm, 15.0);
    EXPECT_LT(bgfGm, 60.0);
    EXPECT_GT(gsGm, 1.3);
    EXPECT_LT(gsGm, 4.0);
}

TEST(Fig5, GsCommIsQuarterOfHostWait)
{
    // "communication ... amounts to about a quarter of time GS spends
    // waiting for host."
    const TimingModel timing;
    const DeviceModel tpu = tpuV1();
    double comm = 0.0, wait = 0.0;
    for (const Workload &w : figure5Workloads()) {
        const TimeBreakdown t = timing.gsTime(tpu, w);
        comm += t.commSec;
        wait += t.commSec + t.hostSec;
    }
    EXPECT_GT(comm / wait, 0.10);
    EXPECT_LT(comm / wait, 0.45);
}

TEST(Fig6, EnergyOrderingHolds)
{
    const TimingModel timing;
    const EnergyModel energy(timing);
    const DeviceModel tpu = tpuV1();
    for (const Workload &w : figure5Workloads()) {
        const double eBgf = energy.bgfEnergy(w).total();
        const double eGs = energy.gsEnergy(tpu, w).total();
        const double eTpu = energy.digitalEnergy(tpu, w).total();
        EXPECT_LT(eBgf, eGs) << w.name;
        EXPECT_LT(eGs, eTpu) << w.name;
    }
}

TEST(Fig6, BgfEnergyAdvantageAboutThreeOrders)
{
    const TimingModel timing;
    const EnergyModel energy(timing);
    const DeviceModel tpu = tpuV1();
    std::vector<double> ratios;
    for (const Workload &w : figure5Workloads())
        ratios.push_back(energy.digitalEnergy(tpu, w).total() /
                         energy.bgfEnergy(w).total());
    const double gm = ising::util::geometricMean(ratios);
    EXPECT_GT(gm, 300.0);
    EXPECT_LT(gm, 5000.0);
}

TEST(Fig6, FlipEnergyFourOrdersApart)
{
    // Sec. 4.3: digital ~nJ/flip at N~1000, BRIM ~100 fJ.
    const double digital = EnergyModel::digitalFlipEnergyJ(1000);
    const double brim = EnergyModel::brimFlipEnergyJ();
    EXPECT_NEAR(digital, 1e-9, 2e-10);
    EXPECT_NEAR(brim, 1e-13, 5e-14);
    EXPECT_GT(digital / brim, 1e3);
    EXPECT_LT(digital / brim, 1e5);
}

TEST(Fig5, WorkloadListMatchesPaper)
{
    const auto workloads = figure5Workloads();
    ASSERT_EQ(workloads.size(), 11u);
    EXPECT_EQ(workloads.front().name, "MNIST_RBM");
    EXPECT_EQ(workloads.back().name, "RC_RBM");
    // DBN workloads carry multiple layers.
    for (const auto &w : workloads) {
        if (w.name.find("DBN") != std::string::npos)
            EXPECT_GT(w.layers.size(), 1u) << w.name;
        else
            EXPECT_EQ(w.layers.size(), 1u) << w.name;
    }
}

TEST(Timing, BiggerModelsTakeLonger)
{
    const TimingModel timing;
    Workload small{"small", {{100, 50}}, 10, 500, 1000};
    Workload large{"large", {{1000, 500}}, 10, 500, 1000};
    const DeviceModel tpu = tpuV1();
    EXPECT_LT(timing.digitalTime(tpu, small).total(),
              timing.digitalTime(tpu, large).total());
    EXPECT_LT(timing.bgfTime(small).total(),
              timing.bgfTime(large).total());
}

TEST(Timing, MoreCdStepsCostMore)
{
    const TimingModel timing;
    Workload w1{"w", {{784, 200}}, 1, 500, 1000};
    Workload w10 = w1;
    w10.k = 10;
    const DeviceModel tpu = tpuV1();
    EXPECT_LT(timing.digitalTime(tpu, w1).total(),
              timing.digitalTime(tpu, w10).total());
    EXPECT_LT(timing.bgfTime(w1).total(), timing.bgfTime(w10).total());
}
