/**
 * @file
 * Integration tests: full pipelines across modules, mirroring the
 * paper's experiments at miniature scale.
 */

#include <gtest/gtest.h>

#include "accel/bgf.hpp"
#include "accel/gibbs_sampler.hpp"
#include "data/glyphs.hpp"
#include "eval/classifier.hpp"
#include "eval/metrics.hpp"
#include "rbm/ais.hpp"
#include "rbm/cd_trainer.hpp"
#include "rbm/exact.hpp"

using namespace ising;
using util::Rng;

namespace {

/** Featurize a dataset through a trained RBM's hidden means. */
data::Dataset
featurize(const rbm::Rbm &model, const data::Dataset &ds)
{
    data::Dataset out;
    out.name = ds.name;
    out.numClasses = ds.numClasses;
    out.labels = ds.labels;
    out.samples.reset(ds.size(), model.numHidden());
    linalg::Vector ph;
    for (std::size_t r = 0; r < ds.size(); ++r) {
        model.hiddenProbs(ds.sample(r), ph);
        std::copy(ph.begin(), ph.end(), out.samples.row(r));
    }
    return out;
}

} // namespace

TEST(Integration, CdFeaturesClassifyAboveChance)
{
    Rng rng(1);
    const data::Dataset raw =
        data::makeGlyphs(data::digitsStyle(), 600, 21);
    const data::Dataset bin = data::binarizeThreshold(raw);
    const data::Split split = data::trainTestSplit(bin, 0.25, rng);

    rbm::Rbm model(bin.dim(), 48);
    model.initRandom(rng);
    rbm::CdConfig cfg;
    cfg.learningRate = 0.1;
    cfg.batchSize = 25;
    rbm::CdTrainer trainer(model, cfg, rng);
    for (int e = 0; e < 5; ++e)
        trainer.trainEpoch(split.train);

    eval::LogisticConfig lcfg;
    lcfg.epochs = 40;
    const double acc = eval::classifierAccuracy(
        featurize(model, split.train), featurize(model, split.test),
        lcfg, rng);
    EXPECT_GT(acc, 0.6);  // chance is 0.1
}

TEST(Integration, BgfFeaturesMatchCdFeatures)
{
    // The Table 4 claim at miniature scale: BGF-trained features give
    // essentially the same classification accuracy as CD-trained ones.
    Rng rng(2);
    const data::Dataset raw =
        data::makeGlyphs(data::digitsStyle(), 600, 22);
    const data::Dataset bin = data::binarizeThreshold(raw);
    const data::Split split = data::trainTestSplit(bin, 0.25, rng);

    // CD baseline.
    rbm::Rbm cdModel(bin.dim(), 48);
    cdModel.initRandom(rng);
    rbm::CdConfig cdCfg;
    cdCfg.learningRate = 0.1;
    cdCfg.batchSize = 25;
    rbm::CdTrainer trainer(cdModel, cdCfg, rng);
    for (int e = 0; e < 5; ++e)
        trainer.trainEpoch(split.train);

    // BGF.
    accel::BgfConfig bgfCfg;
    bgfCfg.learningRate = 0.1 / 25.0;
    bgfCfg.annealSteps = 2;
    accel::BoltzmannGradientFollower bgf(bin.dim(), 48, bgfCfg, rng);
    rbm::Rbm init(bin.dim(), 48);
    init.initRandom(rng);
    bgf.initialize(init);
    for (int e = 0; e < 5; ++e)
        bgf.trainEpoch(split.train);
    const rbm::Rbm bgfModel = bgf.readOut();

    eval::LogisticConfig lcfg;
    lcfg.epochs = 40;
    const double accCd = eval::classifierAccuracy(
        featurize(cdModel, split.train), featurize(cdModel, split.test),
        lcfg, rng);
    const double accBgf = eval::classifierAccuracy(
        featurize(bgfModel, split.train), featurize(bgfModel, split.test),
        lcfg, rng);
    EXPECT_GT(accBgf, 0.5);
    EXPECT_NEAR(accBgf, accCd, 0.15);
}

TEST(Integration, LogProbTrajectoryRisesUnderBgf)
{
    // Fig. 7 at miniature scale: AIS-estimated average log probability
    // improves over BGF training.
    Rng rng(3);
    const data::Dataset raw =
        data::makeGlyphs(data::digitsStyle(), 300, 23);
    const data::Dataset bin = data::binarizeThreshold(raw);

    accel::BgfConfig cfg;
    cfg.learningRate = 0.004;
    cfg.annealSteps = 2;
    accel::BoltzmannGradientFollower bgf(bin.dim(), 24, cfg, rng);
    rbm::Rbm init(bin.dim(), 24);
    init.initRandom(rng);
    bgf.initialize(init);

    rbm::AisConfig aisCfg;
    aisCfg.numChains = 32;
    aisCfg.numBetas = 60;
    rbm::AisEstimator ais(aisCfg, rng);
    const double before = ais.averageLogProb(bgf.readOut(), bin, bin);
    for (int e = 0; e < 4; ++e)
        bgf.trainEpoch(bin);
    const double after = ais.averageLogProb(bgf.readOut(), bin, bin);
    EXPECT_GT(after, before + 5.0);
}

TEST(Integration, KlBiasOrderingOnEnumerableSystem)
{
    // Appendix A at reduced scale: on a 12v x 4h system, ML and BGF
    // and CD all land at comparable KL divergence from ground truth.
    Rng rng(4);
    const std::size_t m = 12, n = 4;

    // Ground-truth data: random sparse patterns over 12 bits.
    data::Dataset train;
    train.samples.reset(60, m);
    for (std::size_t r = 0; r < 60; ++r)
        for (std::size_t i = 0; i < m; ++i)
            train.samples(r, i) =
                ((r * 7 + i * 3) % 5 == 0) ? 1.0f : 0.0f;
    const auto truth = rbm::exact::empiricalDistribution(train);

    // CD-1.
    rbm::Rbm cdModel(m, n);
    cdModel.initRandom(rng, 0.01f);
    rbm::CdConfig cdCfg;
    cdCfg.learningRate = 0.1;
    cdCfg.batchSize = 10;
    rbm::CdTrainer cd(cdModel, cdCfg, rng);
    for (int e = 0; e < 100; ++e)
        cd.trainEpoch(train);

    // ML (exact gradient).  Larger init and more steps: the exact
    // ascent starts on a near-symmetric plateau.
    rbm::Rbm mlModel(m, n);
    mlModel.initRandom(rng, 0.05f);
    for (int s = 0; s < 2000; ++s)
        rbm::exact::mlStep(mlModel, train, 0.2);

    // BGF.
    accel::BgfConfig bgfCfg;
    bgfCfg.learningRate = 0.01;
    bgfCfg.annealSteps = 2;
    accel::BoltzmannGradientFollower bgf(m, n, bgfCfg, rng);
    rbm::Rbm init(m, n);
    init.initRandom(rng, 0.01f);
    bgf.initialize(init);
    for (int e = 0; e < 100; ++e)
        bgf.trainEpoch(train);

    auto kl = [&](const rbm::Rbm &model) {
        return eval::klDivergence(
            truth, rbm::exact::visibleDistribution(model));
    };
    const double klCd = kl(cdModel);
    const double klMl = kl(mlModel);
    const double klBgf = kl(bgf.readOut());

    // ML is the gold standard; CD and BGF must be in its neighborhood,
    // and all far better than an untrained model.
    rbm::Rbm untrained(m, n);
    untrained.initRandom(rng, 0.01f);
    const double klNull = kl(untrained);
    EXPECT_LT(klMl, klNull);
    EXPECT_LT(klCd, klNull);
    EXPECT_LT(klBgf, klNull);
    EXPECT_LT(klMl, klCd + 0.3);
    EXPECT_LT(klBgf, klCd + 0.5);
}
