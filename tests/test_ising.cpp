/**
 * @file
 * Tests for the Ising model, simulated annealing and the bipartite
 * RBM embedding.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ising/bipartite.hpp"
#include "ising/model.hpp"
#include "rbm/exact.hpp"

using namespace ising::machine;
using ising::util::Rng;

TEST(IsingModel, EnergyOfFerromagnetPair)
{
    IsingModel model(2);
    model.setCoupling(0, 1, 1.0f);
    EXPECT_DOUBLE_EQ(model.energy({1, 1}), -1.0);
    EXPECT_DOUBLE_EQ(model.energy({1, -1}), 1.0);
}

TEST(IsingModel, FieldTerm)
{
    IsingModel model(1);
    model.setField(0, 2.0f);
    EXPECT_DOUBLE_EQ(model.energy({1}), -2.0);
    EXPECT_DOUBLE_EQ(model.energy({-1}), 2.0);
}

TEST(IsingModel, CouplingIsSymmetric)
{
    IsingModel model(3);
    model.setCoupling(0, 2, -1.5f);
    EXPECT_FLOAT_EQ(model.coupling(0, 2), -1.5f);
    EXPECT_FLOAT_EQ(model.coupling(2, 0), -1.5f);
}

TEST(IsingModel, FlipDeltaMatchesEnergyDifference)
{
    Rng rng(1);
    IsingModel model(6);
    for (std::size_t i = 0; i < 6; ++i) {
        for (std::size_t j = i + 1; j < 6; ++j)
            model.setCoupling(i, j,
                              static_cast<float>(rng.gaussian(0, 1)));
        model.setField(i, static_cast<float>(rng.gaussian(0, 0.5)));
    }
    SpinState s = IsingModel::randomState(6, rng);
    for (std::size_t i = 0; i < 6; ++i) {
        const double before = model.energy(s);
        const double predicted = model.flipDelta(s, i);
        SpinState flipped = s;
        flipped[i] = -flipped[i];
        EXPECT_NEAR(model.energy(flipped) - before, predicted, 1e-6) << i;
    }
}

TEST(IsingModel, RandomStateIsPlusMinusOne)
{
    Rng rng(2);
    const SpinState s = IsingModel::randomState(50, rng);
    for (int x : s)
        EXPECT_TRUE(x == 1 || x == -1);
}

TEST(SimulatedAnneal, FindsFerromagnetGroundState)
{
    Rng rng(3);
    IsingModel model(10);
    for (std::size_t i = 0; i < 10; ++i)
        for (std::size_t j = i + 1; j < 10; ++j)
            model.setCoupling(i, j, 1.0f);
    const SpinState s = simulatedAnneal(model, 300, 5.0, 0.01, rng);
    // Ground state: all spins aligned, E = -C(10,2) = -45.
    EXPECT_NEAR(model.energy(s), -45.0, 1e-9);
}

TEST(SimulatedAnneal, SolvesSmallMaxCut)
{
    // Antiferromagnetic square: ground state is the 2-coloring.
    Rng rng(4);
    IsingModel model(4);
    model.setCoupling(0, 1, -1.0f);
    model.setCoupling(1, 2, -1.0f);
    model.setCoupling(2, 3, -1.0f);
    model.setCoupling(3, 0, -1.0f);
    const SpinState s = simulatedAnneal(model, 200, 3.0, 0.01, rng);
    EXPECT_NEAR(model.energy(s), -4.0, 1e-9);
    EXPECT_NE(s[0], s[1]);
    EXPECT_NE(s[1], s[2]);
}

TEST(Bipartite, CouplerCounts)
{
    // The Sec. 3.1 example: 784x200 bipartite vs all-to-all.
    EXPECT_EQ(bipartiteCouplerCount(784, 200), 156800u);
    EXPECT_EQ(allToAllCouplerCount(784, 200), 984u * 983u / 2);
    const double ratio =
        static_cast<double>(allToAllCouplerCount(784, 200)) /
        static_cast<double>(bipartiteCouplerCount(784, 200));
    EXPECT_NEAR(ratio, 3.08, 0.1);  // ~6x counting bidirectional pairs
}

TEST(Bipartite, EmbeddingEnergyMatchesRbm)
{
    // Property: E_rbm(v, h) == H_ising(sigma(v, h)) + offset for every
    // configuration of a small model.
    Rng rng(5);
    ising::rbm::Rbm model(4, 3);
    model.initRandom(rng, 0.7f);
    for (std::size_t i = 0; i < 4; ++i)
        model.visibleBias()[i] = static_cast<float>(rng.gaussian(0, 0.4));
    for (std::size_t j = 0; j < 3; ++j)
        model.hiddenBias()[j] = static_cast<float>(rng.gaussian(0, 0.4));

    const RbmEmbedding emb = embedRbm(model);
    ASSERT_EQ(emb.model.numNodes(), 7u);

    for (std::size_t vIdx = 0; vIdx < 16; ++vIdx) {
        for (std::size_t hIdx = 0; hIdx < 8; ++hIdx) {
            float v[4], h[3];
            ising::rbm::exact::decodeState(vIdx, 4, v);
            ising::rbm::exact::decodeState(hIdx, 3, h);
            ising::linalg::Vector vv(4), hh(3);
            for (int i = 0; i < 4; ++i)
                vv[i] = v[i];
            for (int j = 0; j < 3; ++j)
                hh[j] = h[j];
            const SpinState s = bitsToSpins(vv, hh);
            ASSERT_NEAR(model.energy(v, h),
                        emb.model.energy(s) + emb.energyOffset, 1e-4)
                << "v=" << vIdx << " h=" << hIdx;
        }
    }
}

TEST(Bipartite, NoIntraLayerCouplings)
{
    Rng rng(6);
    ising::rbm::Rbm model(5, 4);
    model.initRandom(rng, 0.5f);
    const RbmEmbedding emb = embedRbm(model);
    // visible-visible and hidden-hidden couplings must be zero.
    for (std::size_t a = 0; a < 5; ++a)
        for (std::size_t b = a + 1; b < 5; ++b)
            EXPECT_EQ(emb.model.coupling(a, b), 0.0f);
    for (std::size_t a = 0; a < 4; ++a)
        for (std::size_t b = a + 1; b < 4; ++b)
            EXPECT_EQ(emb.model.coupling(5 + a, 5 + b), 0.0f);
}

TEST(Bipartite, SpinsRoundTrip)
{
    ising::linalg::Vector v(3), h(2);
    v[0] = 1;
    v[2] = 1;
    h[1] = 1;
    const SpinState s = bitsToSpins(v, h);
    BipartiteLayout layout{3, 2};
    ising::linalg::Vector v2, h2;
    spinsToBits(s, layout, v2, h2);
    EXPECT_EQ(v, v2);
    EXPECT_EQ(h, h2);
}

TEST(Bipartite, CouplingIsQuarterWeight)
{
    Rng rng(7);
    ising::rbm::Rbm model(3, 2);
    model.initRandom(rng, 1.0f);
    const RbmEmbedding emb = embedRbm(model);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            EXPECT_NEAR(emb.model.coupling(i, 3 + j),
                        model.weights()(i, j) * 0.25f, 1e-6);
}
