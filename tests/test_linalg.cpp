/**
 * @file
 * Tests for the dense kernels and statistics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "linalg/ops.hpp"
#include "linalg/stats.hpp"
#include "util/rng.hpp"

using namespace ising::linalg;
using ising::util::Rng;

namespace {

Matrix
randomMatrix(std::size_t r, std::size_t c, Rng &rng)
{
    Matrix m(r, c);
    for (std::size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.gaussian());
    return m;
}

Vector
randomVector(std::size_t n, Rng &rng)
{
    Vector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<float>(rng.gaussian());
    return v;
}

} // namespace

TEST(Matrix, ConstructionAndIndexing)
{
    Matrix m(3, 4, 1.5f);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.size(), 12u);
    EXPECT_FLOAT_EQ(m(2, 3), 1.5f);
    m(1, 2) = -2.0f;
    EXPECT_FLOAT_EQ(m.row(1)[2], -2.0f);
}

TEST(Matrix, TransposeInvolution)
{
    Rng rng(1);
    const Matrix m = randomMatrix(7, 5, rng);
    const Matrix tt = m.transposed().transposed();
    EXPECT_EQ(maxAbsDiff(m, tt), 0.0);
}

TEST(Matrix, TransposeEntries)
{
    Rng rng(2);
    const Matrix m = randomMatrix(6, 9, rng);
    const Matrix t = m.transposed();
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            ASSERT_FLOAT_EQ(t(c, r), m(r, c));
}

TEST(Ops, GemvTMatchesNaive)
{
    Rng rng(3);
    const Matrix w = randomMatrix(11, 7, rng);
    const Vector x = randomVector(11, rng);
    const Vector b = randomVector(7, rng);
    Vector y;
    gemvT(w, x, b, y);
    for (std::size_t j = 0; j < 7; ++j) {
        double acc = b[j];
        for (std::size_t i = 0; i < 11; ++i)
            acc += static_cast<double>(x[i]) * w(i, j);
        EXPECT_NEAR(y[j], acc, 1e-4) << j;
    }
}

TEST(Ops, GemvMatchesNaive)
{
    Rng rng(4);
    const Matrix w = randomMatrix(9, 13, rng);
    const Vector h = randomVector(13, rng);
    const Vector b = randomVector(9, rng);
    Vector y;
    gemv(w, h, b, y);
    for (std::size_t i = 0; i < 9; ++i) {
        double acc = b[i];
        for (std::size_t j = 0; j < 13; ++j)
            acc += static_cast<double>(w(i, j)) * h[j];
        EXPECT_NEAR(y[i], acc, 1e-4) << i;
    }
}

TEST(Ops, GemvOrientationsAgreeViaTranspose)
{
    Rng rng(5);
    const Matrix w = randomMatrix(8, 6, rng);
    const Vector x = randomVector(8, rng);
    const Vector zero6(6, 0.0f);
    Vector viaT, viaPlain;
    gemvT(w, x, zero6, viaT);
    const Vector zero8v(8, 0.0f);
    gemv(w.transposed(), x, zero6, viaPlain);
    for (std::size_t j = 0; j < 6; ++j)
        EXPECT_NEAR(viaT[j], viaPlain[j], 1e-4);
}

TEST(Ops, Rank1UpdateMatchesNaive)
{
    Rng rng(6);
    Matrix w = randomMatrix(5, 4, rng);
    const Matrix before = w;
    const Vector v = randomVector(5, rng);
    const Vector h = randomVector(4, rng);
    rank1Update(w, 0.5f, v, h);
    for (std::size_t i = 0; i < 5; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            ASSERT_NEAR(w(i, j), before(i, j) + 0.5f * v[i] * h[j], 1e-5);
}

TEST(Ops, GemmMatchesNaive)
{
    Rng rng(7);
    const Matrix a = randomMatrix(5, 8, rng);
    const Matrix b = randomMatrix(8, 6, rng);
    Matrix c;
    gemm(a, b, c);
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 6; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < 8; ++k)
                acc += static_cast<double>(a(i, k)) * b(k, j);
            ASSERT_NEAR(c(i, j), acc, 1e-4);
        }
    }
}

TEST(Ops, GemmIdentity)
{
    Rng rng(8);
    const Matrix a = randomMatrix(6, 6, rng);
    Matrix eye(6, 6);
    for (std::size_t i = 0; i < 6; ++i)
        eye(i, i) = 1.0f;
    Matrix c;
    gemm(a, eye, c);
    EXPECT_LT(maxAbsDiff(a, c), 1e-6);
}

TEST(Ops, DotAndNorm)
{
    Vector a(3), b(3);
    a[0] = 1; a[1] = 2; a[2] = 3;
    b[0] = 4; b[1] = -5; b[2] = 6;
    EXPECT_NEAR(dot(a, b), 4 - 10 + 18, 1e-9);
    EXPECT_NEAR(normSquared(a), 14.0, 1e-9);
}

TEST(Ops, SumMatrixAndVector)
{
    Matrix m(2, 3, 2.0f);
    EXPECT_NEAR(sum(m), 12.0, 1e-9);
    Vector v(4, 0.25f);
    EXPECT_NEAR(sum(v), 1.0, 1e-9);
}

TEST(Ops, AxpyBehaves)
{
    Vector x(3, 1.0f), y(3, 2.0f);
    axpy(3.0f, x, y);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_FLOAT_EQ(y[i], 5.0f);
}

TEST(Ops, SoftmaxNormalizesAndOrders)
{
    float v[4] = {1.0f, 2.0f, 3.0f, 4.0f};
    softmaxInPlace(v, 4);
    float total = 0.0f;
    for (float x : v)
        total += x;
    EXPECT_NEAR(total, 1.0f, 1e-5);
    EXPECT_LT(v[0], v[1]);
    EXPECT_LT(v[2], v[3]);
}

TEST(Ops, SoftmaxStableForHugeInputs)
{
    float v[2] = {1000.0f, 1000.0f};
    softmaxInPlace(v, 2);
    EXPECT_NEAR(v[0], 0.5f, 1e-5);
    EXPECT_FALSE(std::isnan(v[1]));
}

TEST(Ops, ApplyTransformsEveryEntry)
{
    Matrix m(2, 2, 3.0f);
    apply(m, [](float x) { return x * x; });
    EXPECT_FLOAT_EQ(m(1, 1), 9.0f);
}

TEST(Stats, RunningStatsMatchesClosedForm)
{
    RunningStats s;
    for (int i = 1; i <= 5; ++i)
        s.push(i);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_NEAR(s.mean(), 3.0, 1e-12);
    EXPECT_NEAR(s.variance(), 2.5, 1e-12);
    EXPECT_NEAR(s.min(), 1.0, 1e-12);
    EXPECT_NEAR(s.max(), 5.0, 1e-12);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> v = {1, 2, 3, 4, 5};
    EXPECT_NEAR(percentile(v, 0), 1.0, 1e-12);
    EXPECT_NEAR(percentile(v, 50), 3.0, 1e-12);
    EXPECT_NEAR(percentile(v, 100), 5.0, 1e-12);
    EXPECT_NEAR(percentile(v, 25), 2.0, 1e-12);
}

TEST(Stats, MovingAverageWindow)
{
    std::vector<double> v = {1, 1, 1, 5, 5, 5};
    const auto ma = movingAverage(v, 3);
    EXPECT_NEAR(ma[0], 1.0, 1e-12);
    EXPECT_NEAR(ma[2], 1.0, 1e-12);
    EXPECT_NEAR(ma[5], 5.0, 1e-12);
    EXPECT_NEAR(ma[3], (1 + 1 + 5) / 3.0, 1e-12);
}

TEST(Stats, EmpiricalCdfEndsAtOne)
{
    const auto cdf = empiricalCdf({3.0, 1.0, 2.0});
    ASSERT_EQ(cdf.size(), 3u);
    EXPECT_NEAR(cdf.front().first, 1.0, 1e-12);
    EXPECT_NEAR(cdf.back().first, 3.0, 1e-12);
    EXPECT_NEAR(cdf.back().second, 1.0, 1e-12);
}

TEST(Stats, CorrelationSignAndScale)
{
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {2, 4, 6, 8, 10};
    EXPECT_NEAR(correlation(x, y), 1.0, 1e-9);
    std::vector<double> z = {10, 8, 6, 4, 2};
    EXPECT_NEAR(correlation(x, z), -1.0, 1e-9);
}

/** Property sweep: gemv and gemvT agree with double accumulation over
 *  a range of shapes. */
class GemvShapeSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(GemvShapeSweep, BothOrientationsMatchNaive)
{
    const auto [m, n] = GetParam();
    Rng rng(m * 31 + n);
    const Matrix w = randomMatrix(m, n, rng);
    const Vector x = randomVector(m, rng);
    const Vector h = randomVector(n, rng);
    const Vector bm(m, 0.1f), bn(n, -0.2f);
    Vector up, down;
    gemvT(w, x, bn, up);
    gemv(w, h, bm, down);
    ASSERT_EQ(up.size(), n);
    ASSERT_EQ(down.size(), m);
    for (std::size_t j = 0; j < n; ++j) {
        double acc = bn[j];
        for (std::size_t i = 0; i < m; ++i)
            acc += static_cast<double>(x[i]) * w(i, j);
        ASSERT_NEAR(up[j], acc, 1e-3);
    }
    for (std::size_t i = 0; i < m; ++i) {
        double acc = bm[i];
        for (std::size_t j = 0; j < n; ++j)
            acc += static_cast<double>(w(i, j)) * h[j];
        ASSERT_NEAR(down[i], acc, 1e-3);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemvShapeSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{1, 17},
                      std::pair<std::size_t, std::size_t>{17, 1},
                      std::pair<std::size_t, std::size_t>{64, 64},
                      std::pair<std::size_t, std::size_t>{100, 33},
                      std::pair<std::size_t, std::size_t>{33, 100}));
