/**
 * @file
 * Tests for util math helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/math.hpp"

namespace um = ising::util;

TEST(Sigmoid, KnownValues)
{
    EXPECT_DOUBLE_EQ(um::sigmoid(0.0), 0.5);
    EXPECT_NEAR(um::sigmoid(1.0), 1.0 / (1.0 + std::exp(-1.0)), 1e-12);
}

TEST(Sigmoid, SymmetryProperty)
{
    for (double x = -20.0; x <= 20.0; x += 0.37)
        EXPECT_NEAR(um::sigmoid(x) + um::sigmoid(-x), 1.0, 1e-12) << x;
}

TEST(Sigmoid, SaturatesWithoutNan)
{
    EXPECT_NEAR(um::sigmoid(1000.0), 1.0, 1e-12);
    EXPECT_NEAR(um::sigmoid(-1000.0), 0.0, 1e-12);
    EXPECT_FALSE(std::isnan(um::sigmoid(-1e8)));
}

TEST(Sigmoid, FloatVariantMatchesDouble)
{
    for (float x = -8.0f; x <= 8.0f; x += 0.5f)
        EXPECT_NEAR(um::sigmoidf(x), um::sigmoid(x), 1e-6) << x;
}

TEST(Softplus, MatchesDefinitionMidRange)
{
    for (double x = -20.0; x <= 20.0; x += 0.7)
        EXPECT_NEAR(um::softplus(x), std::log1p(std::exp(x)), 1e-9) << x;
}

TEST(Softplus, LinearForLargeX)
{
    EXPECT_NEAR(um::softplus(100.0), 100.0, 1e-9);
    EXPECT_NEAR(um::softplus(-100.0), 0.0, 1e-9);
}

TEST(Softplus, DerivativeIsSigmoid)
{
    const double h = 1e-6;
    for (double x = -5.0; x <= 5.0; x += 0.9) {
        const double d = (um::softplus(x + h) - um::softplus(x - h)) /
                         (2.0 * h);
        EXPECT_NEAR(d, um::sigmoid(x), 1e-5) << x;
    }
}

TEST(LogSumExp, MatchesNaive)
{
    std::vector<double> v = {0.1, -2.0, 3.5, 1.0};
    double naive = 0.0;
    for (double x : v)
        naive += std::exp(x);
    EXPECT_NEAR(um::logSumExp(v), std::log(naive), 1e-12);
}

TEST(LogSumExp, StableForLargeMagnitudes)
{
    std::vector<double> v = {1000.0, 1000.0};
    EXPECT_NEAR(um::logSumExp(v), 1000.0 + std::log(2.0), 1e-9);
    std::vector<double> w = {-1000.0, -1000.0};
    EXPECT_NEAR(um::logSumExp(w), -1000.0 + std::log(2.0), 1e-9);
}

TEST(LogSumExp, EmptyIsNegInfinity)
{
    EXPECT_EQ(um::logSumExp(nullptr, 0),
              -std::numeric_limits<double>::infinity());
}

TEST(LogSumExp, SingleElement)
{
    std::vector<double> v = {3.25};
    EXPECT_DOUBLE_EQ(um::logSumExp(v), 3.25);
}

TEST(GeometricMean, KnownValues)
{
    EXPECT_NEAR(um::geometricMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(um::geometricMean({5.0}), 5.0, 1e-12);
    EXPECT_NEAR(um::geometricMean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(SpinBit, RoundTrip)
{
    EXPECT_EQ(um::bitToSpin(0), -1);
    EXPECT_EQ(um::bitToSpin(1), 1);
    EXPECT_EQ(um::spinToBit(-1), 0);
    EXPECT_EQ(um::spinToBit(1), 1);
    for (int b = 0; b <= 1; ++b)
        EXPECT_EQ(um::spinToBit(um::bitToSpin(b)), b);
}

TEST(ClampTo, HandlesReversedBounds)
{
    EXPECT_DOUBLE_EQ(um::clampTo(5.0, 0.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(um::clampTo(5.0, 1.0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(um::clampTo(0.5, 0.0, 1.0), 0.5);
}
