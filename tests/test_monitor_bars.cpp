/**
 * @file
 * Tests for the training monitor and the bars-and-stripes dataset.
 */

#include <gtest/gtest.h>

#include "data/bars.hpp"
#include "eval/metrics.hpp"
#include "rbm/cd_trainer.hpp"
#include "rbm/exact.hpp"
#include "rbm/monitor.hpp"

using namespace ising;
using util::Rng;

TEST(BarsAndStripes, PatternsAreBarsOrStripes)
{
    Rng rng(1);
    const data::Dataset ds = data::makeBarsAndStripes(4, 100, rng);
    EXPECT_EQ(ds.dim(), 16u);
    for (std::size_t r = 0; r < ds.size(); ++r) {
        const float *img = ds.sample(r);
        const bool columns = ds.labels[r] == 1;
        // Every line along the pattern orientation is constant.
        for (std::size_t line = 0; line < 4; ++line) {
            const float first = columns ? img[line] : img[line * 4];
            for (std::size_t k = 1; k < 4; ++k) {
                const float v =
                    columns ? img[k * 4 + line] : img[line * 4 + k];
                ASSERT_EQ(v, first)
                    << "row " << r << " line " << line;
            }
        }
    }
}

TEST(BarsAndStripes, ExactDistributionNormalized)
{
    const auto p = data::barsAndStripesDistribution(3);
    ASSERT_EQ(p.size(), 512u);
    double total = 0.0;
    std::size_t support = 0;
    for (double x : p) {
        total += x;
        support += x > 0.0;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    // 2*2^3 patterns, but all-zero and all-one collide across the two
    // orientations: 16 - 2 = 14 distinct states.
    EXPECT_EQ(support, 14u);
}

TEST(BarsAndStripes, EmpiricalMatchesExactDistribution)
{
    Rng rng(2);
    const data::Dataset ds = data::makeBarsAndStripes(3, 8000, rng);
    const auto truth = data::barsAndStripesDistribution(3);
    const auto empirical = rbm::exact::empiricalDistribution(ds);
    EXPECT_LT(eval::klDivergence(truth, empirical), 0.02);
}

TEST(BarsAndStripes, RbmLearnsTheDistribution)
{
    Rng rng(3);
    const data::Dataset ds = data::makeBarsAndStripes(3, 500, rng);
    rbm::Rbm model(9, 6);
    model.initRandom(rng, 0.05f);
    rbm::CdConfig cfg;
    cfg.learningRate = 0.1;
    cfg.batchSize = 25;
    rbm::CdTrainer trainer(model, cfg, rng);
    const auto truth = data::barsAndStripesDistribution(3);
    const double before = eval::klDivergence(
        truth, rbm::exact::visibleDistribution(model));
    for (int e = 0; e < 150; ++e)
        trainer.trainEpoch(ds);
    const double after = eval::klDivergence(
        truth, rbm::exact::visibleDistribution(model));
    EXPECT_LT(after, before * 0.5);
}

TEST(DataStats, FeatureMeansAndOnFraction)
{
    data::Dataset ds;
    ds.samples.reset(4, 2);
    ds.samples(0, 0) = 1;
    ds.samples(1, 0) = 1;
    ds.samples(2, 1) = 1;
    const auto means = data::featureMeans(ds);
    EXPECT_NEAR(means[0], 0.5, 1e-12);
    EXPECT_NEAR(means[1], 0.25, 1e-12);
    EXPECT_NEAR(data::onFraction(ds), 3.0 / 8.0, 1e-12);
}

TEST(Monitor, RecordsSaneDiagnostics)
{
    Rng rng(4);
    const data::Dataset train = data::makeBarsAndStripes(4, 200, rng);
    const data::Dataset held = data::makeBarsAndStripes(4, 100, rng);

    rbm::Rbm model(16, 8);
    model.initRandom(rng, 0.05f);
    rbm::TrainingMonitor monitor(train, held);
    const auto &rec = monitor.observe(0, model, rng);
    EXPECT_EQ(rec.epoch, 0);
    EXPECT_GT(rec.reconstructionError, 0.0);
    EXPECT_GT(rec.weightRms, 0.0);
    EXPECT_LE(rec.weightRms, rec.weightMax);
    EXPECT_EQ(rec.saturationFrac, 0.0);  // tiny init, no saturation
    EXPECT_EQ(monitor.records().size(), 1u);
}

TEST(Monitor, GapNearZeroForMatchedSplits)
{
    // Train and held-out drawn from the same distribution: the free
    // energy gap of an untrained model is near zero.
    Rng rng(5);
    const data::Dataset train = data::makeBarsAndStripes(4, 400, rng);
    const data::Dataset held = data::makeBarsAndStripes(4, 400, rng);
    rbm::Rbm model(16, 8);
    model.initRandom(rng, 0.05f);
    rbm::TrainingMonitor monitor(train, held);
    const auto &rec = monitor.observe(0, model, rng);
    EXPECT_NEAR(rec.freeEnergyGap(), 0.0, 0.5);
}

TEST(Monitor, TracksTrainingProgress)
{
    Rng rng(6);
    const data::Dataset train = data::makeBarsAndStripes(4, 300, rng);
    const data::Dataset held = data::makeBarsAndStripes(4, 150, rng);

    rbm::Rbm model(16, 8);
    model.initRandom(rng, 0.05f);
    rbm::CdConfig cfg;
    cfg.learningRate = 0.1;
    cfg.batchSize = 25;
    rbm::CdTrainer trainer(model, cfg, rng);

    rbm::TrainingMonitor monitor(train, held);
    monitor.observe(0, model, rng);
    for (int e = 1; e <= 20; ++e) {
        trainer.trainEpoch(train);
        monitor.observe(e, model, rng);
    }
    const auto &log = monitor.records();
    // Reconstruction error falls and weights grow as learning proceeds.
    EXPECT_LT(log.back().reconstructionError,
              log.front().reconstructionError);
    EXPECT_GT(log.back().weightRms, log.front().weightRms);
    // Matched distributions: no overfitting alarm expected.
    EXPECT_FALSE(monitor.overfittingDetected(5));
}

TEST(Monitor, OverfittingDetectorNeedsMonotoneGrowth)
{
    Rng rng(7);
    const data::Dataset a = data::makeBarsAndStripes(3, 50, rng);
    rbm::TrainingMonitor monitor(a, a);
    rbm::Rbm model(9, 4);
    model.initRandom(rng, 0.05f);
    for (int e = 0; e < 6; ++e)
        monitor.observe(e, model, rng);
    EXPECT_FALSE(monitor.overfittingDetected(3));
}

TEST(Monitor, OverfittingDetectorIgnoresWeightOnlyRecords)
{
    // The stop signal must survive layer-tagged sessions that append
    // free-energy-less observeWeights rows (gap 0) next to the real
    // per-epoch gap trajectory, and must count epochs, not records.
    rbm::TrainingMonitor monitor(data::Dataset{}, data::Dataset{});
    linalg::Matrix w(2, 2);
    for (int e = 0; e < 5; ++e) {
        // Hand-build a strictly growing gap via the record list: a
        // real free-energy record followed by a weight-only record.
        rbm::MonitorRecord &rec = const_cast<rbm::MonitorRecord &>(
            monitor.observeWeights(e, -1, w, 0.0));
        rec.trainFreeEnergy = -10.0;
        rec.heldOutFreeEnergy = -10.0 + e;  // gap grows every epoch
        monitor.observeWeights(e, 1, w, 0.0);  // gap-0 noise row
    }
    EXPECT_TRUE(monitor.overfittingDetected(3));
}
