/**
 * @file
 * net/ tests: frame-codec round trips, and the epoll front end's
 * byte-identity, admission-control, fault-isolation and graceful
 * shutdown contracts, driven over real sockets against a NetServer
 * running on a second thread.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "engine/server.hpp"
#include "net/client.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "rbm/serialize.hpp"
#include "util/fault.hpp"

using namespace ising;
using engine::ModelRegistry;
using engine::Op;

namespace {

namespace fs = std::filesystem;

rbm::Rbm
randomRbm(std::size_t m, std::size_t n, std::uint64_t seed)
{
    rbm::Rbm model(m, n);
    util::Rng rng(seed);
    model.initRandom(rng, 0.5f);
    return model;
}

/** Corpus request -> Infer frame with the chosen payload kind. */
net::Request
inferFrame(const engine::Request &req, std::uint32_t id,
           net::PayloadKind kind)
{
    net::Request frame;
    frame.type = net::FrameType::InferRequest;
    frame.id = id;
    frame.model = req.model;
    frame.op = req.op;
    frame.steps = req.steps;
    frame.seed = req.seed;
    if (req.op == Op::Sample) {
        frame.payload = net::PayloadKind::None;
        frame.rows = static_cast<std::uint32_t>(req.count);
        return frame;
    }
    frame.rows = static_cast<std::uint32_t>(req.input.rows());
    frame.cols = static_cast<std::uint32_t>(req.input.cols());
    frame.payload = kind;
    if (kind == net::PayloadKind::Packed) {
        linalg::BitMatrix bits(req.input.rows(), req.input.cols());
        for (std::size_t r = 0; r < req.input.rows(); ++r)
            bits.packRowFrom(r, req.input.row(r));
        frame.words.assign(
            bits.row(0),
            bits.row(0) + req.input.rows() * bits.wordsPerRow());
    } else {
        frame.floats.assign(req.input.data(),
                            req.input.data() + req.input.size());
    }
    return frame;
}

/** Expect @p res to carry exactly @p expected's bytes. */
void
expectSameBytes(const net::Response &res,
                const engine::Response &expected)
{
    ASSERT_EQ(res.code, net::kWireOk) << res.message;
    ASSERT_EQ(res.rows, expected.output.rows());
    ASSERT_EQ(res.cols, expected.output.cols());
    ASSERT_EQ(res.floats.size(), expected.output.size());
    if (!res.floats.empty()) {
        EXPECT_EQ(std::memcmp(res.floats.data(), expected.output.data(),
                              res.floats.size() * sizeof(float)),
                  0);
    }
    ASSERT_EQ(res.labels.size(), expected.labels.size());
    for (std::size_t i = 0; i < res.labels.size(); ++i)
        EXPECT_EQ(res.labels[i], expected.labels[i]);
}

/** Registry + one ragged model + a NetServer on its own thread. */
class NetTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("isingrbm_test_net_" + std::to_string(::getpid()) +
                 "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
        fs::remove_all(dir_);
        registry_ = std::make_unique<ModelRegistry>(dir_);
        rbm::Checkpoint ckpt;
        ckpt.model = randomRbm(33, 17, 2);  // ragged on purpose
        registry_->put("m", std::move(ckpt));
    }

    void
    TearDown() override
    {
        stopServer();
        util::FaultInjector::instance().reset();
        registry_.reset();
        fs::remove_all(dir_);
    }

    /** Start the server thread; returns the bound port. */
    std::uint16_t
    startServer(net::NetConfig config = {})
    {
        server_ = std::make_unique<net::NetServer>(*registry_,
                                                   std::move(config));
        const std::uint16_t port = server_->start();
        thread_ = std::thread([this] { server_->run(); });
        return port;
    }

    void
    stopServer()
    {
        if (server_)
            server_->requestStop();
        if (thread_.joinable())
            thread_.join();
    }

    /** In-process baseline responses for @p corpus (cache off). */
    std::vector<engine::Response>
    baseline(std::vector<engine::Request> corpus)
    {
        ModelRegistry fresh(dir_);
        engine::Server server(fresh);
        return server.serve(std::move(corpus));
    }

    std::string dir_;
    std::unique_ptr<ModelRegistry> registry_;
    std::unique_ptr<net::NetServer> server_;
    std::thread thread_;
};

} // namespace

// ----------------------------------------------------------- codec

TEST(NetFrame, InferRequestRoundTripsBothPayloads)
{
    for (const auto kind :
         {net::PayloadKind::Packed, net::PayloadKind::Float}) {
        engine::Request req;
        req.model = "m";
        req.op = Op::Reconstruct;
        req.seed = 99;
        req.input.reset(3, 33);
        util::Rng rng(5);
        for (std::size_t r = 0; r < 3; ++r)
            for (std::size_t c = 0; c < 33; ++c)
                req.input(r, c) = rng.bernoulli(0.5) ? 1.0f : 0.0f;
        const net::Request frame = inferFrame(req, 7, kind);

        std::string bytes;
        net::encodeRequest(frame, bytes);
        net::FrameReader reader;
        reader.feed(bytes.data(), bytes.size());
        std::string body;
        ASSERT_TRUE(reader.next(body));
        net::Request back;
        ASSERT_TRUE(
            net::decodeRequest(body.data(), body.size(), back));
        EXPECT_EQ(back.type, net::FrameType::InferRequest);
        EXPECT_EQ(back.id, 7u);
        EXPECT_EQ(back.model, "m");
        EXPECT_EQ(back.op, Op::Reconstruct);
        EXPECT_EQ(back.payload, kind);
        EXPECT_EQ(back.seed, 99u);
        EXPECT_EQ(back.rows, 3u);
        EXPECT_EQ(back.cols, 33u);
        EXPECT_EQ(back.words, frame.words);
        EXPECT_EQ(back.floats, frame.floats);
        EXPECT_FALSE(reader.next(body));  // exactly one frame
    }
}

TEST(NetFrame, ResponseRoundTripsFloatsLabelsAndModels)
{
    net::Response res;
    res.type = net::FrameType::InferResponse;
    res.id = 3;
    res.code = net::kWireOverloaded;
    res.message = "busy";
    res.rows = 2;
    res.cols = 2;
    res.floats = {1.5f, -0.25f, 0.0f, 42.0f};
    std::string bytes;
    net::encodeResponse(res, bytes);
    net::Response back;
    // Strip the 4-byte length prefix by replaying through a reader.
    net::FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    std::string body;
    ASSERT_TRUE(reader.next(body));
    ASSERT_TRUE(net::decodeResponse(body.data(), body.size(), back));
    EXPECT_EQ(back.id, 3u);
    EXPECT_EQ(back.code, net::kWireOverloaded);
    EXPECT_EQ(back.message, "busy");
    EXPECT_EQ(back.floats, res.floats);

    net::Response list;
    list.type = net::FrameType::ListResponse;
    list.models.push_back({"m", "rbm", "cd", 4, 33, 17});
    bytes.clear();
    net::encodeResponse(list, bytes);
    net::FrameReader reader2;
    reader2.feed(bytes.data(), bytes.size());
    ASSERT_TRUE(reader2.next(body));
    ASSERT_TRUE(net::decodeResponse(body.data(), body.size(), back));
    ASSERT_EQ(back.models.size(), 1u);
    EXPECT_EQ(back.models[0].name, "m");
    EXPECT_EQ(back.models[0].family, "rbm");
    EXPECT_EQ(back.models[0].epoch, 4);
    EXPECT_EQ(back.models[0].inputDim, 33u);
    EXPECT_EQ(back.models[0].outputDim, 17u);
}

TEST(NetFrame, ReaderAssemblesByteByByte)
{
    net::Request frame;
    frame.type = net::FrameType::InfoRequest;
    frame.model = "hello";
    std::string bytes;
    net::encodeRequest(frame, bytes);
    net::encodeRequest(frame, bytes);  // two frames back to back

    net::FrameReader reader;
    std::string body;
    int frames = 0;
    for (const char byte : bytes) {
        reader.feed(&byte, 1);
        while (reader.next(body)) {
            ++frames;
            net::Request back;
            ASSERT_TRUE(
                net::decodeRequest(body.data(), body.size(), back));
            EXPECT_EQ(back.model, "hello");
        }
    }
    EXPECT_EQ(frames, 2);
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(NetFrame, MalformedBodiesAreRejected)
{
    net::Request out;
    // Unknown type byte.
    const char junk[] = {99};
    EXPECT_FALSE(net::decodeRequest(junk, sizeof junk, out));
    // Truncated Infer body.
    engine::Request req;
    req.model = "m";
    req.op = Op::Featurize;
    req.input.reset(1, 8);
    std::string bytes;
    net::encodeRequest(inferFrame(req, 1, net::PayloadKind::Float),
                       bytes);
    EXPECT_FALSE(
        net::decodeRequest(bytes.data() + 4, bytes.size() - 10, out));
    // Payload size disagreeing with rows x cols.
    std::string full(bytes.begin() + 4, bytes.end());
    full.append(4, '\0');
    EXPECT_FALSE(net::decodeRequest(full.data(), full.size(), out));
    // Empty body.
    EXPECT_FALSE(net::decodeRequest(bytes.data(), 0, out));
}

TEST(NetFrame, HugeDimsDoNotOverflowTheSizeCheck)
{
    // rows = cols = 2^31 makes rows*cols*4 wrap to exactly 0 in 64
    // bits, so a header-only frame used to pass the size check and
    // drive a 2^62-element resize.  encodeRequest with an empty
    // payload vector emits precisely that malicious frame.
    net::Request evil;
    evil.type = net::FrameType::InferRequest;
    evil.payload = net::PayloadKind::Float;
    evil.model = "m";
    evil.rows = 0x80000000u;
    evil.cols = 0x80000000u;
    std::string bytes;
    net::encodeRequest(evil, bytes);
    net::Request out;
    EXPECT_FALSE(
        net::decodeRequest(bytes.data() + 4, bytes.size() - 4, out));

    // Same wrap in decodeResponse (the client-side check).
    std::string body;
    const auto le32 = [&body](std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            body.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    };
    body.push_back(
        static_cast<char>(net::FrameType::InferResponse));
    le32(1);                 // id
    body.push_back('\0');    // code = ok
    body.append(2, '\0');    // empty message
    le32(0x80000000u);       // rows
    le32(0x80000000u);       // cols
    body.push_back('\x01');  // kind = floats, but no payload bytes
    net::Response rout;
    EXPECT_FALSE(net::decodeResponse(body.data(), body.size(), rout));
}

TEST(NetFrame, OversizedLengthPoisonsTheReader)
{
    net::FrameReader reader(1024);
    const char huge[] = {'\xff', '\xff', '\xff', '\x7f', 'x'};
    reader.feed(huge, sizeof huge);
    std::string body;
    EXPECT_FALSE(reader.next(body));
    EXPECT_TRUE(reader.overflow());
    // Once poisoned, further feeds stay dead.
    reader.feed(huge, sizeof huge);
    EXPECT_FALSE(reader.next(body));
}

// ---------------------------------------------------- served bytes

TEST_F(NetTest, SocketBytesMatchInProcessAcrossConnections)
{
    net::NetConfig config;
    config.server.cacheBytes = 1 << 20;  // cache ON over the socket
    const std::uint16_t port = startServer(std::move(config));

    const auto model = registry_->get("m");
    std::vector<engine::Request> corpus;
    for (const Op op : {Op::Reconstruct, Op::Featurize, Op::Sample}) {
        auto part = engine::probeRequests(*model, "m", op, 6, 3, 4, 21);
        for (auto &req : part)
            corpus.push_back(std::move(req));
    }
    const std::vector<engine::Response> expected = baseline(corpus);

    // Three concurrent connections, round-robin, pipelined; one
    // speaks floats, two speak packed -- byte-identity must hold for
    // any interleaving and either payload.
    for (int round = 0; round < 2; ++round) {  // round 2 = cache hits
        net::Client clients[3];
        for (auto &client : clients)
            ASSERT_TRUE(client.connect("127.0.0.1", port));
        for (std::size_t q = 0; q < corpus.size(); ++q) {
            const auto kind = q % 3 == 2 ? net::PayloadKind::Float
                                         : net::PayloadKind::Packed;
            ASSERT_TRUE(clients[q % 3].send(inferFrame(
                corpus[q], static_cast<std::uint32_t>(q), kind)));
        }
        std::vector<net::Response> got(corpus.size());
        for (std::size_t q = 0; q < corpus.size(); ++q) {
            net::Response res;
            ASSERT_TRUE(clients[q % 3].recv(res));
            ASSERT_LT(res.id, got.size());
            got[res.id] = std::move(res);
        }
        for (std::size_t q = 0; q < corpus.size(); ++q)
            expectSameBytes(got[q], expected[q]);
    }

    stopServer();
    const auto stats = server_->engine().stats();
    EXPECT_GT(stats.cacheHits, 0u);  // round 2 replayed from cache
    EXPECT_GT(stats.flushLatencyNs.count(), 0u);
}

TEST_F(NetTest, PackedPadBitsAreCanonicalized)
{
    net::NetConfig config;
    config.server.cacheBytes = 1 << 20;
    const std::uint16_t port = startServer(std::move(config));

    const auto model = registry_->get("m");
    const auto corpus = engine::probeRequests(*model, "m",
                                              Op::Reconstruct, 1, 2,
                                              4, 11);
    const std::vector<engine::Response> expected = baseline(corpus);

    // 33 columns leave 31 pad bits per row.  A client is free to send
    // garbage there; the server must mask it so the engine sees a
    // BitMatrix with its zero-pad invariant intact and the cache key
    // is canonical.
    net::Request clean = inferFrame(corpus[0], 0,
                                    net::PayloadKind::Packed);
    net::Request dirty = clean;
    const std::uint64_t padMask = ~((1ull << (clean.cols % 64)) - 1);
    for (std::uint64_t &w : dirty.words)
        w |= padMask;  // wordsPerRow == 1: every word is a tail word
    ASSERT_NE(dirty.words, clean.words);

    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    net::Response res;
    ASSERT_TRUE(client.call(dirty, res));
    expectSameBytes(res, expected[0]);  // pad bits don't change bytes
    ASSERT_TRUE(client.call(clean, res));
    expectSameBytes(res, expected[0]);

    stopServer();
    // Dirty and clean hashed to the same canonical key.
    EXPECT_GT(server_->engine().stats().cacheHits, 0u);
}

TEST_F(NetTest, ListAndInfoDescribeTheRegistry)
{
    rbm::Checkpoint second;
    second.model = randomRbm(12, 5, 9);
    registry_->put("other", std::move(second));
    const std::uint16_t port = startServer();

    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    net::Request list;
    list.type = net::FrameType::ListRequest;
    net::Response res;
    ASSERT_TRUE(client.call(list, res));
    EXPECT_EQ(res.type, net::FrameType::ListResponse);
    ASSERT_EQ(res.models.size(), 2u);

    net::Request info;
    info.type = net::FrameType::InfoRequest;
    info.model = "other";
    ASSERT_TRUE(client.call(info, res));
    EXPECT_EQ(res.code, net::kWireOk);
    ASSERT_EQ(res.models.size(), 1u);
    EXPECT_EQ(res.models[0].name, "other");
    EXPECT_EQ(res.models[0].family, "rbm");
    EXPECT_EQ(res.models[0].inputDim, 12u);
    EXPECT_EQ(res.models[0].outputDim, 5u);

    info.model = "missing";
    ASSERT_TRUE(client.call(info, res));
    EXPECT_EQ(res.code, net::kWireNotFound);
}

TEST_F(NetTest, OverloadShedsWithStatusAndKeepsServing)
{
    net::NetConfig config;
    config.maxPendingRows = 4;  // tiny budget: 2 requests of 2 rows
    const std::uint16_t port = startServer(std::move(config));

    const auto model = registry_->get("m");
    const auto corpus =
        engine::probeRequests(*model, "m", Op::Reconstruct, 12, 2, 4, 5);
    const std::vector<engine::Response> expected = baseline(corpus);

    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    // Pipeline everything as ONE write so one cycle sees all 12 and
    // sheds what does not fit -- but every request gets a reply (zero
    // dropped frames).  Separate sends can straddle event-loop cycles
    // that each stay under budget, making the shed count flaky.
    std::string burst;
    for (std::size_t q = 0; q < corpus.size(); ++q)
        net::encodeRequest(inferFrame(corpus[q],
                                      static_cast<std::uint32_t>(q),
                                      net::PayloadKind::Packed),
                           burst);
    ASSERT_TRUE(client.sendBytes(burst));
    std::size_t ok = 0, shed = 0;
    for (std::size_t q = 0; q < corpus.size(); ++q) {
        net::Response res;
        ASSERT_TRUE(client.recv(res));
        if (res.code == net::kWireOverloaded) {
            ++shed;
        } else {
            expectSameBytes(res, expected[res.id]);  // admitted = exact
            ++ok;
        }
    }
    EXPECT_GT(ok, 0u);
    EXPECT_GT(shed, 0u);
    EXPECT_EQ(ok + shed, corpus.size());

    // The budget is per cycle, not leaked by sheds: a polite batch
    // that fits is served in full afterwards.
    for (std::size_t q = 0; q < 2; ++q) {
        net::Response res;
        ASSERT_TRUE(client.call(inferFrame(corpus[q],
                                           static_cast<std::uint32_t>(q),
                                           net::PayloadKind::Packed),
                                res));
        expectSameBytes(res, expected[q]);
    }

    stopServer();
    EXPECT_EQ(server_->stats().shed, shed);
}

TEST_F(NetTest, NetdropIsolatesTheDroppedConnection)
{
    const std::uint16_t port = startServer();
    const auto model = registry_->get("m");
    const auto corpus =
        engine::probeRequests(*model, "m", Op::Reconstruct, 4, 2, 4, 31);
    const std::vector<engine::Response> expected = baseline(corpus);

    // Deterministic accept order: finish a round trip on A before B
    // connects, so A is conn:1 and B is conn:2.
    net::Client a, b;
    ASSERT_TRUE(a.connect("127.0.0.1", port));
    net::Request list;
    list.type = net::FrameType::ListRequest;
    net::Response ignored;
    ASSERT_TRUE(a.call(list, ignored));
    ASSERT_TRUE(b.connect("127.0.0.1", port));

    // B's first reply write is chopped mid-frame and the conn closed.
    util::FaultInjector::instance().configure("netdrop:conn:2@1");

    ASSERT_TRUE(b.send(inferFrame(corpus[1], 1,
                                  net::PayloadKind::Packed)));
    ASSERT_TRUE(a.send(inferFrame(corpus[0], 0,
                                  net::PayloadKind::Packed)));
    net::Response res;
    ASSERT_TRUE(a.recv(res));
    expectSameBytes(res, expected[0]);  // A's bytes unperturbed
    EXPECT_FALSE(b.recv(res));          // B sees a torn frame + EOF

    // A keeps being served exact bytes after B's demise.
    ASSERT_TRUE(a.call(inferFrame(corpus[2], 2,
                                  net::PayloadKind::Packed),
                       res));
    expectSameBytes(res, expected[2]);

    stopServer();
    EXPECT_EQ(server_->stats().faultDrops, 1u);
}

TEST_F(NetTest, NetstallIsReapedByTheIdleTimeout)
{
    net::NetConfig config;
    config.idleTimeoutMs = 300;
    const std::uint16_t port = startServer(std::move(config));
    const auto model = registry_->get("m");
    const auto corpus =
        engine::probeRequests(*model, "m", Op::Featurize, 3, 2, 4, 77);
    const std::vector<engine::Response> expected = baseline(corpus);

    net::Client a, b;
    ASSERT_TRUE(a.connect("127.0.0.1", port));
    net::Request list;
    list.type = net::FrameType::ListRequest;
    net::Response ignored;
    ASSERT_TRUE(a.call(list, ignored));
    ASSERT_TRUE(b.connect("127.0.0.1", port));

    util::FaultInjector::instance().configure("netstall:conn:2@1");

    ASSERT_TRUE(b.send(inferFrame(corpus[1], 1,
                                  net::PayloadKind::Packed)));
    net::Response res;
    // A stays fully served while B's replies are frozen...
    ASSERT_TRUE(a.call(inferFrame(corpus[0], 0,
                                  net::PayloadKind::Packed),
                       res));
    expectSameBytes(res, expected[0]);
    // ...until the idle timeout reaps the stalled connection.  (A is
    // idle too while we block here, so it may be reaped as well --
    // prove continued service with a fresh connection.)
    EXPECT_FALSE(b.recv(res));
    net::Client fresh;
    ASSERT_TRUE(fresh.connect("127.0.0.1", port));
    ASSERT_TRUE(fresh.call(inferFrame(corpus[2], 2,
                                      net::PayloadKind::Packed),
                           res));
    expectSameBytes(res, expected[2]);

    stopServer();
    EXPECT_EQ(server_->stats().faultStalls, 1u);
    EXPECT_GE(server_->stats().idleClosed, 1u);
}

TEST_F(NetTest, ReplyBacklogPausesReadsAndIsReaped)
{
    net::NetConfig config;
    config.idleTimeoutMs = 300;
    config.maxConnBacklog = 1;  // any unsent reply trips the cap
    const std::uint16_t port = startServer(std::move(config));
    const auto model = registry_->get("m");
    const auto corpus =
        engine::probeRequests(*model, "m", Op::Featurize, 8, 2, 4, 19);
    const std::vector<engine::Response> expected = baseline(corpus);

    net::Client a, b;
    ASSERT_TRUE(a.connect("127.0.0.1", port));
    net::Request list;
    list.type = net::FrameType::ListRequest;
    net::Response ignored;
    ASSERT_TRUE(a.call(list, ignored));
    ASSERT_TRUE(b.connect("127.0.0.1", port));

    // Freeze b's writes: its reply backlog now only grows, modelling
    // a client that pipelines requests but never reads responses.
    util::FaultInjector::instance().configure("netstall:conn:2@1");
    ASSERT_TRUE(b.send(inferFrame(corpus[1], 1,
                                  net::PayloadKind::Packed)));
    net::Response res;
    ASSERT_TRUE(a.call(inferFrame(corpus[0], 0,
                                  net::PayloadKind::Packed),
                       res));
    expectSameBytes(res, expected[0]);  // other conns unperturbed

    // Keep sending on b past the idle timeout.  Reads from b are
    // paused by the backlog cap, so these frames never refresh its
    // lastActivity (and are never decoded): the reaper still fires.
    for (int i = 0; i < 6; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        (void)b.send(inferFrame(corpus[static_cast<std::size_t>(2 + i)],
                                static_cast<std::uint32_t>(2 + i),
                                net::PayloadKind::Packed));
    }
    EXPECT_FALSE(b.recv(res));  // reaped despite the ongoing sends

    net::Client fresh;  // a idled out during the sleeps; prove service
    ASSERT_TRUE(fresh.connect("127.0.0.1", port));
    ASSERT_TRUE(fresh.call(inferFrame(corpus[7], 7,
                                      net::PayloadKind::Packed),
                           res));
    expectSameBytes(res, expected[7]);

    stopServer();
    const auto stats = server_->stats();
    EXPECT_EQ(stats.faultStalls, 1u);
    EXPECT_GE(stats.backpressured, 1u);
    EXPECT_GE(stats.idleClosed, 1u);
    // b's post-pause frames were never read: only its first Infer and
    // the two served over a/fresh ever reached the engine.
    EXPECT_EQ(stats.infers, 3u);
}

TEST_F(NetTest, GarbageBytesCloseOnlyTheirConnection)
{
    const std::uint16_t port = startServer();
    net::Client good, bad;
    ASSERT_TRUE(good.connect("127.0.0.1", port));
    ASSERT_TRUE(bad.connect("127.0.0.1", port));

    // A response-typed frame is not a valid request.
    net::Response bogus;
    bogus.type = net::FrameType::InferResponse;
    std::string bytes;
    net::encodeResponse(bogus, bytes);
    ASSERT_TRUE(bad.sendBytes(bytes));
    net::Response res;
    EXPECT_FALSE(bad.recv(res));  // closed without a reply

    net::Request list;
    list.type = net::FrameType::ListRequest;
    ASSERT_TRUE(good.call(list, res));  // the good conn is untouched
    EXPECT_EQ(res.type, net::FrameType::ListResponse);

    stopServer();
    EXPECT_EQ(server_->stats().protocolErrors, 1u);
}

TEST_F(NetTest, ShutdownFrameDrainsAndStops)
{
    const std::uint16_t port = startServer();
    const auto model = registry_->get("m");
    const auto corpus =
        engine::probeRequests(*model, "m", Op::Reconstruct, 3, 2, 4, 63);
    const std::vector<engine::Response> expected = baseline(corpus);

    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    // Pipeline work *and* the shutdown: the queued requests must all
    // be answered before the server exits.
    for (std::size_t q = 0; q < corpus.size(); ++q)
        ASSERT_TRUE(client.send(inferFrame(
            corpus[q], static_cast<std::uint32_t>(q),
            net::PayloadKind::Packed)));
    net::Request shutdown;
    shutdown.type = net::FrameType::ShutdownRequest;
    ASSERT_TRUE(client.send(shutdown));

    for (std::size_t q = 0; q < corpus.size(); ++q) {
        net::Response res;
        ASSERT_TRUE(client.recv(res));
        expectSameBytes(res, expected[res.id]);
    }
    net::Response ack;
    ASSERT_TRUE(client.recv(ack));
    EXPECT_EQ(ack.type, net::FrameType::ShutdownResponse);
    thread_.join();  // run() returns on its own
    EXPECT_EQ(server_->stats().infers, corpus.size());
}

TEST_F(NetTest, LoadGenMeasuresAndMatchesBaseline)
{
    net::NetConfig config;
    config.server.cacheBytes = 1 << 20;
    const std::uint16_t port = startServer(std::move(config));

    net::LoadGenConfig gen;
    gen.port = port;
    gen.model = "m";
    gen.op = Op::Reconstruct;
    gen.requests = 16;
    gen.rows = 3;
    gen.steps = 4;
    gen.seed = 13;
    gen.connections = 2;
    gen.keepResponses = true;
    const net::LoadGenReport report = net::runLoadGen(gen);
    ASSERT_TRUE(report.error.empty()) << report.error;
    EXPECT_EQ(report.ok, gen.requests);
    EXPECT_EQ(report.shed, 0u);
    EXPECT_EQ(report.okRows, gen.requests * gen.rows);
    EXPECT_EQ(report.latencyNs.count(), gen.requests);
    EXPECT_GT(report.latencyNs.quantile(0.99), 0u);

    // The loadgen corpus is the probeRequests stream: byte-diff the
    // kept responses against the in-process baseline.
    const auto model = registry_->get("m");
    const std::vector<engine::Response> expected = baseline(
        engine::probeRequests(*model, "m", Op::Reconstruct,
                              gen.requests, gen.rows, gen.steps,
                              gen.seed));
    for (std::size_t q = 0; q < gen.requests; ++q)
        expectSameBytes(report.responses[q], expected[q]);
}

// ----------------------------------------------- deadlines + canary

TEST(NetFrame, DeadlineTravelsAsAnOptionalTrailingField)
{
    engine::Request req;
    req.model = "m";
    req.op = Op::Featurize;
    req.seed = 3;
    req.input.reset(2, 8);
    net::Request bare = inferFrame(req, 1, net::PayloadKind::Float);
    net::Request budgeted = bare;
    budgeted.deadlineMs = 250;

    std::string bareBytes, budgetBytes;
    net::encodeRequest(bare, bareBytes);
    net::encodeRequest(budgeted, budgetBytes);
    // The field is appended only when nonzero, and is exactly 4 bytes.
    EXPECT_EQ(budgetBytes.size(), bareBytes.size() + 4);

    net::Request back;
    ASSERT_TRUE(net::decodeRequest(budgetBytes.data() + 4,
                                   budgetBytes.size() - 4, back));
    EXPECT_EQ(back.deadlineMs, 250u);
    ASSERT_TRUE(net::decodeRequest(bareBytes.data() + 4,
                                   bareBytes.size() - 4, back));
    EXPECT_EQ(back.deadlineMs, 0u);  // legacy frames still decode

    // Any trailing length other than 0 or 4 stays malformed.
    std::string torn(budgetBytes.begin() + 4, budgetBytes.end());
    torn.pop_back();
    EXPECT_FALSE(net::decodeRequest(torn.data(), torn.size(), back));
    std::string bloated(bareBytes.begin() + 4, bareBytes.end());
    bloated.append(2, '\0');
    EXPECT_FALSE(
        net::decodeRequest(bloated.data(), bloated.size(), back));
    // An explicit zero deadline never leaves the encoder, so it is
    // malformed on the wire too (junk padding must not decode).
    std::string zeroed(bareBytes.begin() + 4, bareBytes.end());
    zeroed.append(4, '\0');
    EXPECT_FALSE(
        net::decodeRequest(zeroed.data(), zeroed.size(), back));
}

TEST(NetFrame, HealthSnapshotRoundTripsEveryField)
{
    net::Response res;
    res.type = net::FrameType::HealthResponse;
    res.health.requests = 101;
    res.health.rows = 404;
    res.health.shed = 7;
    res.health.backpressured = 3;
    res.health.deadlineExpired = 11;
    res.health.canaryShadows = 64;
    res.health.canaryCleanStreak = 32;
    res.health.canaryQuarantines = 2;
    res.health.canaryPromotions = 1;
    res.health.rollbacks = 5;
    res.health.canaryState = 2;
    res.health.lastDivergence = 0.125;
    res.health.meanDivergence = 0.0625;

    std::string bytes;
    net::encodeResponse(res, bytes);
    net::FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    std::string body;
    ASSERT_TRUE(reader.next(body));
    net::Response back;
    ASSERT_TRUE(net::decodeResponse(body.data(), body.size(), back));
    EXPECT_EQ(back.type, net::FrameType::HealthResponse);
    EXPECT_EQ(back.health.requests, 101u);
    EXPECT_EQ(back.health.rows, 404u);
    EXPECT_EQ(back.health.shed, 7u);
    EXPECT_EQ(back.health.backpressured, 3u);
    EXPECT_EQ(back.health.deadlineExpired, 11u);
    EXPECT_EQ(back.health.canaryShadows, 64u);
    EXPECT_EQ(back.health.canaryCleanStreak, 32u);
    EXPECT_EQ(back.health.canaryQuarantines, 2u);
    EXPECT_EQ(back.health.canaryPromotions, 1u);
    EXPECT_EQ(back.health.rollbacks, 5u);
    EXPECT_EQ(back.health.canaryState, 2);
    EXPECT_EQ(back.health.lastDivergence, 0.125);
    EXPECT_EQ(back.health.meanDivergence, 0.0625);
    EXPECT_STREQ(net::canaryStateName(2), "quarantined");
}

TEST_F(NetTest, HealthFrameReportsLiveCounters)
{
    const std::uint16_t port = startServer();
    const auto model = registry_->get("m");
    const auto corpus =
        engine::probeRequests(*model, "m", Op::Reconstruct, 2, 2, 4, 3);
    const std::vector<engine::Response> expected = baseline(corpus);

    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    net::Response res;
    ASSERT_TRUE(client.call(inferFrame(corpus[0], 0,
                                       net::PayloadKind::Packed),
                            res));
    expectSameBytes(res, expected[0]);

    net::Request health;
    health.type = net::FrameType::HealthRequest;
    ASSERT_TRUE(client.call(health, res));
    EXPECT_EQ(res.type, net::FrameType::HealthResponse);
    EXPECT_EQ(res.code, net::kWireOk);
    EXPECT_GE(res.health.requests, 1u);
    EXPECT_GE(res.health.rows, 2u);
    EXPECT_EQ(res.health.canaryState, 0);  // no candidate staged
    EXPECT_EQ(res.health.canaryShadows, 0u);
}

TEST_F(NetTest, DivergentCanaryNeverPerturbsSocketBytes)
{
    // Stage a zero-weight candidate: wildly divergent from the random
    // incumbent, so the gate must quarantine -- while every byte the
    // client sees stays identical to the canary-off baseline.
    rbm::Checkpoint cand;
    cand.meta.name = "m";
    cand.meta.backend = "cd";
    cand.meta.epoch = 2;
    cand.model = rbm::Rbm(33, 17);
    const std::string candPath = dir_ + "/candidate.rbm";
    rbm::saveCheckpoint(cand, candPath);
    ASSERT_TRUE(registry_->stageCandidate("m", candPath).ok());

    net::NetConfig config;
    config.server.canary.model = "m";
    config.server.canary.fraction = 1.0;
    config.server.canary.minShadows = 1u << 20;  // never promote
    config.server.canary.maxDivergence = 1e-6;   // always breach
    config.server.canary.quarantineMinMs = 1;
    config.server.canary.quarantineMaxMs = 2;
    const std::uint16_t port = startServer(std::move(config));

    const auto model = registry_->get("m");
    std::vector<engine::Request> corpus;
    for (const Op op : {Op::Reconstruct, Op::Featurize}) {
        auto part = engine::probeRequests(*model, "m", op, 6, 3, 4, 57);
        for (auto &req : part)
            corpus.push_back(std::move(req));
    }
    const std::vector<engine::Response> expected = baseline(corpus);

    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    for (std::size_t q = 0; q < corpus.size(); ++q) {
        net::Response res;
        ASSERT_TRUE(client.call(inferFrame(
                                    corpus[q],
                                    static_cast<std::uint32_t>(q),
                                    net::PayloadKind::Packed),
                                res));
        expectSameBytes(res, expected[q]);  // candidate never leaks
    }

    net::Request health;
    health.type = net::FrameType::HealthRequest;
    net::Response res;
    ASSERT_TRUE(client.call(health, res));
    EXPECT_GE(res.health.canaryShadows, 1u);
    EXPECT_GE(res.health.canaryQuarantines, 1u);
    EXPECT_EQ(res.health.canaryPromotions, 0u);
    EXPECT_GE(res.health.rollbacks, 1u);

    stopServer();
    EXPECT_EQ(server_->engine().stats().canaryPromotions, 0u);
}

TEST_F(NetTest, ClientHealsASeveredConnectionAndResends)
{
    const std::uint16_t port = startServer();
    const auto model = registry_->get("m");
    const auto corpus =
        engine::probeRequests(*model, "m", Op::Reconstruct, 2, 2, 4, 91);
    const std::vector<engine::Response> expected = baseline(corpus);

    // The first connection's first reply is chopped mid-frame and the
    // socket closed under the client: call() must back off, reconnect,
    // resend, and hand back the exact bytes as if nothing happened.
    util::FaultInjector::instance().configure("netdrop:conn:1@1");

    net::Client client(net::Client::RetryPolicy{3, 10, 100});
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    net::Response res;
    ASSERT_TRUE(client.call(inferFrame(corpus[0], 0,
                                       net::PayloadKind::Packed),
                            res));
    expectSameBytes(res, expected[0]);
    EXPECT_EQ(client.retries(), 1u);
    EXPECT_EQ(client.reconnects(), 1u);

    // The healed connection keeps working with no further retries.
    ASSERT_TRUE(client.call(inferFrame(corpus[1], 1,
                                       net::PayloadKind::Packed),
                            res));
    expectSameBytes(res, expected[1]);
    EXPECT_EQ(client.retries(), 1u);

    stopServer();
    EXPECT_EQ(server_->stats().faultDrops, 1u);
}
