/**
 * @file
 * Property sweeps over the Sec. 4.5 noise grid: the full analog
 * training pipeline must remain functional at every (variation, noise)
 * combination the paper studies, and quality must degrade gracefully.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/bgf.hpp"
#include "accel/gibbs_sampler.hpp"
#include "ising/noise.hpp"
#include "rbm/exact.hpp"

using namespace ising;
using util::Rng;

namespace {

data::Dataset
stripeData(std::size_t rows, std::size_t dim)
{
    data::Dataset ds;
    ds.samples.reset(rows, dim);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t i = 0; i < dim; ++i)
            ds.samples(r, i) = (r % 2 == i % 2) ? 1.0f : 0.0f;
    return ds;
}

struct NoiseName
{
    std::string
    operator()(const ::testing::TestParamInfo<machine::NoiseSpec> &info)
        const
    {
        const auto &spec = info.param;
        return "var" + std::to_string(int(spec.rmsVariation * 100)) +
               "_noise" + std::to_string(int(spec.rmsNoise * 100));
    }
};

} // namespace

/** Sweep: BGF trains successfully at every paper noise point. */
class BgfNoiseSweep
    : public ::testing::TestWithParam<machine::NoiseSpec>
{
};

TEST_P(BgfNoiseSweep, LearnsStripes)
{
    const machine::NoiseSpec noise = GetParam();
    Rng rng(31);
    const auto ds = stripeData(60, 12);
    accel::BgfConfig cfg;
    cfg.learningRate = 0.02;
    cfg.annealSteps = 2;
    cfg.analog.noise = noise;
    accel::BoltzmannGradientFollower bgf(12, 5, cfg, rng);
    rbm::Rbm init(12, 5);
    init.initRandom(rng, 0.01f);
    bgf.initialize(init);
    const double before =
        rbm::exact::meanLogLikelihood(bgf.readOut(), ds);
    for (int e = 0; e < 30; ++e)
        bgf.trainEpoch(ds);
    const double after =
        rbm::exact::meanLogLikelihood(bgf.readOut(), ds);
    EXPECT_GT(after, before + 0.5)
        << "var " << noise.rmsVariation << " noise " << noise.rmsNoise;
    // No NaN/exploded weights at any noise point.
    const rbm::Rbm out = bgf.readOut();
    for (std::size_t i = 0; i < out.weights().size(); ++i) {
        ASSERT_FALSE(std::isnan(out.weights().data()[i]));
        ASSERT_LE(std::fabs(out.weights().data()[i]),
                  cfg.analog.weightMax + 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, BgfNoiseSweep,
                         ::testing::ValuesIn(machine::paperNoiseGrid()),
                         NoiseName());

/** Sweep: GS also survives the full noise grid. */
class GsNoiseSweep
    : public ::testing::TestWithParam<machine::NoiseSpec>
{
};

TEST_P(GsNoiseSweep, LearnsStripes)
{
    const machine::NoiseSpec noise = GetParam();
    Rng rng(32);
    const auto ds = stripeData(60, 12);
    rbm::Rbm model(12, 5);
    model.initRandom(rng, 0.01f);
    const double before = rbm::exact::meanLogLikelihood(model, ds);
    accel::GsConfig cfg;
    cfg.learningRate = 0.2;
    cfg.batchSize = 10;
    cfg.analog.noise = noise;
    accel::GibbsSamplerAccel gs(model, cfg, rng);
    for (int e = 0; e < 40; ++e)
        gs.trainEpoch(ds);
    EXPECT_GT(rbm::exact::meanLogLikelihood(model, ds), before + 0.5)
        << "var " << noise.rmsVariation << " noise " << noise.rmsNoise;
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, GsNoiseSweep,
                         ::testing::ValuesIn(machine::paperNoiseGrid()),
                         NoiseName());

/** Sweep: the fabric's sampling stays calibrated per noise point. */
class FabricNoiseSweep
    : public ::testing::TestWithParam<machine::NoiseSpec>
{
};

TEST_P(FabricNoiseSweep, MarginalsStayOrdered)
{
    // Units with strongly positive vs strongly negative activation
    // must keep their ordering under every noise combination.
    const machine::NoiseSpec noise = GetParam();
    Rng rng(33);
    rbm::Rbm model(6, 2);
    for (std::size_t i = 0; i < 6; ++i) {
        model.weights()(i, 0) = 0.8f;
        model.weights()(i, 1) = -0.8f;
    }
    machine::AnalogConfig cfg;
    cfg.noise = noise;
    machine::AnalogFabric fabric(6, 2, cfg, rng);
    fabric.program(model);
    linalg::Vector v(6, 1.0f), h;
    double freq0 = 0.0, freq1 = 0.0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        fabric.sampleHidden(v, h, rng);
        freq0 += h[0];
        freq1 += h[1];
    }
    EXPECT_GT(freq0 / trials, freq1 / trials + 0.2)
        << "var " << noise.rmsVariation << " noise " << noise.rmsNoise;
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, FabricNoiseSweep,
                         ::testing::ValuesIn(machine::paperNoiseGrid()),
                         NoiseName());
