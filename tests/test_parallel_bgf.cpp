/**
 * @file
 * Determinism and equivalence of the threaded training paths: the
 * ParallelBgf fleet and the CD trainer must produce bit-identical
 * models for any worker count at a fixed seed, and reproduce
 * run-to-run.
 */

#include <gtest/gtest.h>

#include "accel/parallel_bgf.hpp"
#include "exec/thread_pool.hpp"
#include "linalg/ops.hpp"
#include "rbm/cd_trainer.hpp"

using namespace ising;
using util::Rng;

namespace {

data::Dataset
stripeData(std::size_t rows, std::size_t dim)
{
    data::Dataset ds;
    ds.samples.reset(rows, dim);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t i = 0; i < dim; ++i)
            ds.samples(r, i) = (r % 2 == i % 2) ? 1.0f : 0.0f;
    return ds;
}

rbm::Rbm
trainFleet(exec::ThreadPool &pool, std::size_t replicas,
           std::size_t *samples = nullptr)
{
    const auto ds = stripeData(60, 12);
    Rng rng(21);
    accel::ParallelBgfConfig cfg;
    cfg.numReplicas = replicas;
    cfg.syncEveryEpochs = 1;
    cfg.replica.learningRate = 0.02;
    cfg.replica.annealSteps = 2;
    cfg.pool = &pool;
    accel::ParallelBgf fleet(12, 5, cfg, rng);
    rbm::Rbm init(12, 5);
    init.initRandom(rng, 0.01f);
    fleet.initialize(init);
    fleet.train(ds, 6);
    if (samples)
        *samples = fleet.samplesProcessed();
    return fleet.readOut();
}

rbm::Rbm
trainCd(exec::ThreadPool &pool, bool persistent, int epochs = 5)
{
    const auto ds = stripeData(60, 12);
    Rng rng(31);
    rbm::Rbm model(12, 5);
    model.initRandom(rng, 0.01f);
    rbm::CdConfig cfg;
    cfg.learningRate = 0.1;
    cfg.k = 2;
    cfg.batchSize = 10;
    cfg.persistent = persistent;
    cfg.numParticles = 4;
    cfg.pool = &pool;
    rbm::CdTrainer trainer(model, cfg, rng);
    for (int e = 0; e < epochs; ++e)
        trainer.trainEpoch(ds);
    return model;
}

} // namespace

TEST(ParallelBgf, SerialAndThreadedAgreeBitwise)
{
    exec::ThreadPool serial(1);
    exec::ThreadPool threaded(4);
    std::size_t samplesA = 0, samplesB = 0;
    const rbm::Rbm a = trainFleet(serial, 4, &samplesA);
    const rbm::Rbm b = trainFleet(threaded, 4, &samplesB);
    EXPECT_EQ(samplesA, samplesB);
    EXPECT_EQ(linalg::maxAbsDiff(a.weights(), b.weights()), 0.0);
    EXPECT_TRUE(a.visibleBias() == b.visibleBias());
    EXPECT_TRUE(a.hiddenBias() == b.hiddenBias());
}

TEST(ParallelBgf, ReproducesRunToRun)
{
    exec::ThreadPool pool(3);
    const rbm::Rbm a = trainFleet(pool, 3);
    const rbm::Rbm b = trainFleet(pool, 3);
    EXPECT_EQ(linalg::maxAbsDiff(a.weights(), b.weights()), 0.0);
}

TEST(ParallelBgf, WorkerCountDoesNotChangeTheModel)
{
    exec::ThreadPool two(2);
    exec::ThreadPool eight(8);
    const rbm::Rbm a = trainFleet(two, 4);
    const rbm::Rbm b = trainFleet(eight, 4);
    EXPECT_EQ(linalg::maxAbsDiff(a.weights(), b.weights()), 0.0);
}

TEST(CdTrainer, SerialAndThreadedAgreeBitwise)
{
    exec::ThreadPool serial(1);
    exec::ThreadPool threaded(4);
    const rbm::Rbm a = trainCd(serial, /*persistent=*/false);
    const rbm::Rbm b = trainCd(threaded, /*persistent=*/false);
    EXPECT_EQ(linalg::maxAbsDiff(a.weights(), b.weights()), 0.0);
    EXPECT_TRUE(a.visibleBias() == b.visibleBias());
    EXPECT_TRUE(a.hiddenBias() == b.hiddenBias());
}

TEST(CdTrainer, PcdSerialAndThreadedAgreeBitwise)
{
    exec::ThreadPool serial(1);
    exec::ThreadPool threaded(4);
    const rbm::Rbm a = trainCd(serial, /*persistent=*/true);
    const rbm::Rbm b = trainCd(threaded, /*persistent=*/true);
    EXPECT_EQ(linalg::maxAbsDiff(a.weights(), b.weights()), 0.0);
}

TEST(CdTrainer, ThreadedTrainingStillLearns)
{
    exec::ThreadPool pool(4);
    const auto ds = stripeData(60, 12);
    const rbm::Rbm model = trainCd(pool, false, 30);
    // Reconstruction of the training stripes must beat chance (0.25
    // for a maximally uncertain model) by a clear margin.
    linalg::Vector ph, pv;
    double err = 0.0;
    for (std::size_t r = 0; r < ds.size(); ++r) {
        model.hiddenProbs(ds.sample(r), ph);
        model.visibleProbs(ph.data(), pv);
        for (std::size_t i = 0; i < ds.dim(); ++i) {
            const double d = pv[i] - ds.samples(r, i);
            err += d * d;
        }
    }
    err /= static_cast<double>(ds.size() * ds.dim());
    EXPECT_LT(err, 0.15);
}
