/**
 * @file
 * Tests for the QUBO mapping and max-cut helpers.
 */

#include <gtest/gtest.h>

#include "ising/brim.hpp"
#include "ising/qubo.hpp"

using namespace ising::machine;
using ising::util::Rng;

namespace {

Qubo
randomQubo(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Qubo qubo;
    qubo.q.reset(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        qubo.q(i, i) = static_cast<float>(rng.gaussian(0, 1));
        for (std::size_t j = i + 1; j < n; ++j) {
            const float v = static_cast<float>(rng.gaussian(0, 1));
            qubo.q(i, j) = v;
            qubo.q(j, i) = v;
        }
    }
    return qubo;
}

} // namespace

TEST(Qubo, ValueMatchesDefinition)
{
    Qubo qubo;
    qubo.q.reset(3, 3);
    qubo.q(0, 0) = 1.0f;
    qubo.q(1, 1) = -2.0f;
    qubo.q(0, 1) = qubo.q(1, 0) = 3.0f;
    EXPECT_DOUBLE_EQ(qubo.value({0, 0, 0}), 0.0);
    EXPECT_DOUBLE_EQ(qubo.value({1, 0, 0}), 1.0);
    EXPECT_DOUBLE_EQ(qubo.value({1, 1, 0}), 1.0 - 2.0 + 3.0);
}

TEST(Qubo, IsingMappingPreservesObjective)
{
    // Property: qubo.value(b) == H(sigma(b)) + offset for every b.
    const Qubo qubo = randomQubo(6, 1);
    const QuboEmbedding emb = quboToIsing(qubo);
    for (std::size_t mask = 0; mask < 64; ++mask) {
        std::vector<int> bits(6);
        SpinState s(6);
        for (std::size_t i = 0; i < 6; ++i) {
            bits[i] = (mask >> i) & 1;
            s[i] = bits[i] ? 1 : -1;
        }
        ASSERT_NEAR(qubo.value(bits), emb.model.energy(s) + emb.offset,
                    1e-4)
            << "mask " << mask;
    }
}

TEST(Qubo, SpinsRoundTripToBits)
{
    const SpinState s = {1, -1, -1, 1};
    const auto bits = spinsToQuboBits(s);
    EXPECT_EQ(bits, (std::vector<int>{1, 0, 0, 1}));
}

TEST(MaxCut, CutValueCountsCrossingEdges)
{
    WeightedGraph g;
    g.numVertices = 4;
    g.edges = {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 1.5}, {3, 0, 0.5}};
    const SpinState s = {1, -1, 1, -1};  // alternating: every edge cut
    EXPECT_DOUBLE_EQ(cutValue(g, s), 5.0);
    const SpinState same = {1, 1, 1, 1};
    EXPECT_DOUBLE_EQ(cutValue(g, same), 0.0);
}

TEST(MaxCut, IsingGroundStateMaximizesCut)
{
    // For every spin assignment: cut = const - H/1 relation; verify
    // the max-cut spin state minimizes the Ising energy.
    Rng rng(2);
    const WeightedGraph g = randomGraph(10, 0.5, rng);
    const IsingModel model = maxCutToIsing(g);
    double bestCut = -1.0, bestCutEnergy = 0.0;
    double minEnergy = 1e300, minEnergyCut = 0.0;
    SpinState s(10);
    for (std::size_t mask = 0; mask < 1024; ++mask) {
        for (std::size_t i = 0; i < 10; ++i)
            s[i] = (mask >> i) & 1 ? 1 : -1;
        const double cut = cutValue(g, s);
        const double e = model.energy(s);
        if (cut > bestCut) {
            bestCut = cut;
            bestCutEnergy = e;
        }
        if (e < minEnergy) {
            minEnergy = e;
            minEnergyCut = cut;
        }
    }
    EXPECT_DOUBLE_EQ(minEnergyCut, bestCut);
    EXPECT_DOUBLE_EQ(bestCutEnergy, minEnergy);
}

TEST(MaxCut, BruteForceOnKnownGraph)
{
    // A 4-cycle: max cut = 4 (alternating partition).
    WeightedGraph g;
    g.numVertices = 4;
    g.edges = {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 0, 1.0}};
    EXPECT_DOUBLE_EQ(bruteForceMaxCut(g), 4.0);
    // A triangle: max cut = 2.
    WeightedGraph tri;
    tri.numVertices = 3;
    tri.edges = {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}};
    EXPECT_DOUBLE_EQ(bruteForceMaxCut(tri), 2.0);
}

TEST(MaxCut, BrimFindsNearOptimalCut)
{
    // End-to-end: random graph -> Ising -> BRIM anneal -> cut within
    // 90% of the brute-force optimum.
    Rng rng(3);
    const WeightedGraph g = randomGraph(14, 0.4, rng);
    const double optimum = bruteForceMaxCut(g);
    const IsingModel model = maxCutToIsing(g);

    BrimConfig cfg;
    cfg.dt = 0.02;
    cfg.flipRateStart = 0.02;
    BrimSimulator sim(model, cfg, rng);
    double best = 0.0;
    for (int restart = 0; restart < 5; ++restart) {
        sim.randomizeState();
        sim.anneal(2000);
        sim.relax(1e-9, 3000);
        best = std::max(best, cutValue(g, sim.spins()));
    }
    EXPECT_GE(best, 0.9 * optimum);
}

TEST(RandomGraph, EdgeProbabilityHonored)
{
    Rng rng(4);
    const WeightedGraph g = randomGraph(60, 0.3, rng);
    const double possible = 60.0 * 59.0 / 2.0;
    EXPECT_NEAR(g.edges.size() / possible, 0.3, 0.04);
    for (const auto &e : g.edges) {
        EXPECT_LT(e.a, 60u);
        EXPECT_LT(e.b, 60u);
        EXPECT_NE(e.a, e.b);
        EXPECT_DOUBLE_EQ(e.weight, 1.0);
    }
}
