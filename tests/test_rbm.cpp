/**
 * @file
 * Tests for the RBM model primitives: energies, conditionals, free
 * energy, and their mutual consistency.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rbm/exact.hpp"
#include "rbm/rbm.hpp"
#include "util/math.hpp"

using namespace ising::rbm;
using ising::util::Rng;

namespace {

Rbm
randomModel(std::size_t m, std::size_t n, std::uint64_t seed,
            float scale = 0.5f)
{
    Rbm model(m, n);
    Rng rng(seed);
    model.initRandom(rng, scale);
    for (std::size_t i = 0; i < m; ++i)
        model.visibleBias()[i] = static_cast<float>(rng.gaussian(0, 0.3));
    for (std::size_t j = 0; j < n; ++j)
        model.hiddenBias()[j] = static_cast<float>(rng.gaussian(0, 0.3));
    return model;
}

} // namespace

TEST(Rbm, InitRandomStatistics)
{
    Rbm model(50, 40);
    Rng rng(1);
    model.initRandom(rng, 0.01f);
    double mean = 0.0, var = 0.0;
    const float *w = model.weights().data();
    for (std::size_t i = 0; i < model.weights().size(); ++i)
        mean += w[i];
    mean /= model.weights().size();
    for (std::size_t i = 0; i < model.weights().size(); ++i)
        var += (w[i] - mean) * (w[i] - mean);
    var /= model.weights().size();
    EXPECT_NEAR(mean, 0.0, 0.001);
    EXPECT_NEAR(std::sqrt(var), 0.01, 0.002);
    for (std::size_t i = 0; i < 50; ++i)
        EXPECT_EQ(model.visibleBias()[i], 0.0f);
}

TEST(Rbm, EnergyMatchesDefinition)
{
    const Rbm model = randomModel(4, 3, 2);
    const float v[4] = {1, 0, 1, 1};
    const float h[3] = {0, 1, 1};
    double expected = 0.0;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            expected -= v[i] * model.weights()(i, j) * h[j];
    for (std::size_t i = 0; i < 4; ++i)
        expected -= model.visibleBias()[i] * v[i];
    for (std::size_t j = 0; j < 3; ++j)
        expected -= model.hiddenBias()[j] * h[j];
    EXPECT_NEAR(model.energy(v, h), expected, 1e-5);
}

TEST(Rbm, FreeEnergyMarginalizesHidden)
{
    // F(v) must equal -log sum_h exp(-E(v, h)) by direct enumeration.
    const Rbm model = randomModel(5, 3, 3);
    const float v[5] = {1, 1, 0, 1, 0};
    std::vector<double> negE;
    for (std::size_t hIdx = 0; hIdx < 8; ++hIdx) {
        float h[3];
        exact::decodeState(hIdx, 3, h);
        negE.push_back(-model.energy(v, h));
    }
    const double direct = -ising::util::logSumExp(negE);
    EXPECT_NEAR(model.freeEnergy(v), direct, 1e-5);
}

TEST(Rbm, HiddenProbsMatchConditionalDefinition)
{
    const Rbm model = randomModel(6, 4, 4);
    const float v[6] = {1, 0, 1, 0, 1, 1};
    ising::linalg::Vector ph;
    model.hiddenProbs(v, ph);
    for (std::size_t j = 0; j < 4; ++j) {
        double act = model.hiddenBias()[j];
        for (std::size_t i = 0; i < 6; ++i)
            act += v[i] * model.weights()(i, j);
        EXPECT_NEAR(ph[j], ising::util::sigmoid(act), 1e-5);
    }
}

TEST(Rbm, VisibleProbsMatchConditionalDefinition)
{
    const Rbm model = randomModel(5, 3, 5);
    const float h[3] = {1, 0, 1};
    ising::linalg::Vector pv;
    model.visibleProbs(h, pv);
    for (std::size_t i = 0; i < 5; ++i) {
        double act = model.visibleBias()[i];
        for (std::size_t j = 0; j < 3; ++j)
            act += model.weights()(i, j) * h[j];
        EXPECT_NEAR(pv[i], ising::util::sigmoid(act), 1e-5);
    }
}

TEST(Rbm, ConditionalConsistentWithEnergyDelta)
{
    // P(h_j=1 | v, h_-j) = sigmoid(-dE) where dE = E(h_j=1) - E(h_j=0);
    // for an RBM this is independent of h_-j.
    const Rbm model = randomModel(4, 3, 6);
    const float v[4] = {1, 1, 0, 1};
    float h0[3] = {1, 0, 0};
    float h1[3] = {1, 1, 0};
    const double dE = model.energy(v, h1) - model.energy(v, h0);
    ising::linalg::Vector ph;
    model.hiddenProbs(v, ph);
    EXPECT_NEAR(ph[1], ising::util::sigmoid(-dE), 1e-5);
}

TEST(Rbm, SampleBinaryRespectsProbabilities)
{
    Rng rng(7);
    ising::linalg::Vector p(3);
    p[0] = 0.0f;
    p[1] = 1.0f;
    p[2] = 0.5f;
    int ones2 = 0;
    ising::linalg::Vector s;
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
        Rbm::sampleBinary(p, s, rng);
        EXPECT_EQ(s[0], 0.0f);
        EXPECT_EQ(s[1], 1.0f);
        ones2 += s[2] > 0.5f;
    }
    EXPECT_NEAR(static_cast<double>(ones2) / trials, 0.5, 0.02);
}

TEST(Rbm, MeanFreeEnergyAveragesRows)
{
    const Rbm model = randomModel(4, 3, 8);
    ising::linalg::Matrix samples(2, 4);
    samples(0, 0) = 1;
    samples(1, 2) = 1;
    const double f0 = model.freeEnergy(samples.row(0));
    const double f1 = model.freeEnergy(samples.row(1));
    EXPECT_NEAR(model.meanFreeEnergy(samples), (f0 + f1) / 2.0, 1e-9);
}

TEST(Rbm, LowerEnergyMeansHigherProbability)
{
    const Rbm model = randomModel(6, 4, 9, 1.0f);
    const double logZ = exact::logPartition(model);
    const float a[6] = {1, 1, 1, 0, 0, 0};
    const float b[6] = {0, 0, 0, 1, 1, 1};
    const double fa = model.freeEnergy(a), fb = model.freeEnergy(b);
    const double pa = exact::logProb(model, a, logZ);
    const double pb = exact::logProb(model, b, logZ);
    EXPECT_EQ(fa < fb, pa > pb);
}

/** Property sweep: free energy equals hidden marginalization across
 *  random models of several shapes. */
class FreeEnergySweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(FreeEnergySweep, MatchesEnumeration)
{
    const auto [m, n] = GetParam();
    const Rbm model = randomModel(m, n, 100 + m + n, 0.8f);
    Rng rng(55);
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<float> v(m);
        for (auto &x : v)
            x = rng.bernoulli(0.5) ? 1.0f : 0.0f;
        std::vector<double> negE;
        for (std::size_t hIdx = 0; hIdx < (1u << n); ++hIdx) {
            std::vector<float> h(n);
            exact::decodeState(hIdx, n, h.data());
            negE.push_back(-model.energy(v.data(), h.data()));
        }
        ASSERT_NEAR(model.freeEnergy(v.data()),
                    -ising::util::logSumExp(negE), 1e-4);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FreeEnergySweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{3, 2},
                      std::pair<std::size_t, std::size_t>{8, 4},
                      std::pair<std::size_t, std::size_t>{12, 6},
                      std::pair<std::size_t, std::size_t>{5, 10}));
