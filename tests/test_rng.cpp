/**
 * @file
 * Tests for util::Rng: determinism, distribution moments, bounds.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hpp"

using ising::util::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(77);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.reseed(77);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformFloatInUnitInterval)
{
    Rng rng(6);
    for (int i = 0; i < 10000; ++i) {
        const float u = rng.uniformFloat();
        ASSERT_GE(u, 0.0f);
        ASSERT_LT(u, 1.0f);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(7);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(8);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.0, 2.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 2.0);
    }
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, UniformIntOneAlwaysZero)
{
    Rng rng(10);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.uniformInt(1), 0u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    const int n = 200000;
    double mean = 0.0, m2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        mean += g;
        m2 += g * g;
    }
    mean /= n;
    m2 /= n;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(m2 - mean * mean, 1.0, 0.03);
}

TEST(Rng, GaussianShiftScale)
{
    Rng rng(12);
    const int n = 100000;
    double mean = 0.0;
    for (int i = 0; i < n; ++i)
        mean += rng.gaussian(3.0, 0.5);
    EXPECT_NEAR(mean / n, 3.0, 0.02);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(13);
    const int n = 100000;
    int ones = 0;
    for (int i = 0; i < n; ++i)
        ones += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(14);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, SignBalanced)
{
    Rng rng(15);
    int sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.sign();
    EXPECT_LT(std::abs(sum), n / 50);
}

TEST(Rng, SplitProducesDecorrelatedStream)
{
    Rng parent(16);
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += parent.next() == child.next();
    EXPECT_LT(equal, 5);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(17);
    std::vector<std::size_t> idx(100);
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    rng.shuffle(idx.data(), idx.size());
    std::set<std::size_t> unique(idx.begin(), idx.end());
    EXPECT_EQ(unique.size(), idx.size());
    EXPECT_EQ(*unique.begin(), 0u);
    EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(Rng, ShuffleActuallyMoves)
{
    Rng rng(18);
    std::vector<std::size_t> idx(100);
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    rng.shuffle(idx.data(), idx.size());
    int fixed = 0;
    for (std::size_t i = 0; i < idx.size(); ++i)
        fixed += idx[i] == i;
    EXPECT_LT(fixed, 15);
}

/** Chi-squared style sweep: uniformInt is unbiased for several n. */
class RngUniformIntSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngUniformIntSweep, Unbiased)
{
    const std::uint64_t n = GetParam();
    Rng rng(100 + n);
    std::vector<int> counts(n, 0);
    const int draws = 20000 * static_cast<int>(n);
    for (int i = 0; i < draws; ++i)
        ++counts[rng.uniformInt(n)];
    const double expected = static_cast<double>(draws) / n;
    for (std::uint64_t b = 0; b < n; ++b)
        EXPECT_NEAR(counts[b] / expected, 1.0, 0.05)
            << "bucket " << b << " of " << n;
}

INSTANTIATE_TEST_SUITE_P(Buckets, RngUniformIntSweep,
                         ::testing::Values(2, 3, 5, 10, 17));
