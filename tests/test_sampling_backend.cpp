/**
 * @file
 * Conformance suite for the unified SamplingBackend interface, run
 * against both implementations (software math and analog fabric), plus
 * software-specific exactness checks for the cached-transpose kernels.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "accel/fabric_backend.hpp"
#include "rbm/gibbs.hpp"
#include "rbm/sampling.hpp"
#include "rbm/sampling_backend.hpp"

using namespace ising;
using util::Rng;

namespace {

/** A model with strong structure so sampling statistics are testable. */
rbm::Rbm
biasedModel(std::size_t m, std::size_t n)
{
    rbm::Rbm model(m, n);
    for (std::size_t i = 0; i < m; ++i) {
        model.weights()(i, 0) = 0.9f;
        if (n > 1)
            model.weights()(i, 1) = -0.9f;
    }
    return model;
}

struct BackendCase
{
    std::string name;
};

class SamplingBackendConformance
    : public ::testing::TestWithParam<BackendCase>
{
  protected:
    void
    SetUp() override
    {
        model_ = biasedModel(8, 4);
        rng_ = std::make_unique<Rng>(404);
        machine::AnalogConfig cfg;  // noiseless but non-ideal circuits
        backend_ = accel::makeSamplingBackend(
            accel::samplingBackendKind(GetParam().name), model_, cfg,
            *rng_);
    }

    rbm::Rbm model_;
    std::unique_ptr<Rng> rng_;
    std::unique_ptr<rbm::SamplingBackend> backend_;
};

} // namespace

TEST_P(SamplingBackendConformance, ReportsModelShape)
{
    EXPECT_EQ(backend_->numVisible(), 8u);
    EXPECT_EQ(backend_->numHidden(), 4u);
    EXPECT_EQ(std::string(backend_->name()).empty(), false);
}

TEST_P(SamplingBackendConformance, HiddenSamplesAreBinaryAndSized)
{
    linalg::Vector v(8, 1.0f), h, ph;
    backend_->sampleHidden(v, h, ph, *rng_);
    ASSERT_EQ(h.size(), 4u);
    ASSERT_EQ(ph.size(), 4u);
    for (std::size_t j = 0; j < h.size(); ++j) {
        EXPECT_TRUE(h[j] == 0.0f || h[j] == 1.0f);
        EXPECT_GE(ph[j], 0.0f);
        EXPECT_LE(ph[j], 1.0f);
    }
}

TEST_P(SamplingBackendConformance, VisibleSamplesAreBinaryAndSized)
{
    linalg::Vector h(4, 1.0f), v, pv;
    backend_->sampleVisible(h, v, pv, *rng_);
    ASSERT_EQ(v.size(), 8u);
    ASSERT_EQ(pv.size(), 8u);
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_TRUE(v[i] == 0.0f || v[i] == 1.0f);
}

TEST_P(SamplingBackendConformance, MarginalsFollowTheEnergyLandscape)
{
    // With all-ones visible input, hidden unit 0 (strong positive
    // couplers) must fire far more often than unit 1 (negative).
    linalg::Vector v(8, 1.0f), h, ph;
    double freq0 = 0.0, freq1 = 0.0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        backend_->sampleHidden(v, h, ph, *rng_);
        freq0 += h[0];
        freq1 += h[1];
    }
    EXPECT_GT(freq0 / trials, freq1 / trials + 0.3);
}

TEST_P(SamplingBackendConformance, AnnealKeepsStatesBinary)
{
    linalg::Vector v, h(4), pv, ph;
    for (std::size_t j = 0; j < 4; ++j)
        h[j] = j % 2 ? 1.0f : 0.0f;
    backend_->anneal(5, v, h, pv, ph, *rng_);
    ASSERT_EQ(v.size(), 8u);
    ASSERT_EQ(h.size(), 4u);
    for (float x : v)
        EXPECT_TRUE(x == 0.0f || x == 1.0f);
    for (float x : h)
        EXPECT_TRUE(x == 0.0f || x == 1.0f);
}

TEST_P(SamplingBackendConformance, SamplingIsDeterministicPerSeed)
{
    linalg::Vector v(8, 1.0f), h1, h2, ph;
    Rng a(77), b(77);
    for (int t = 0; t < 50; ++t) {
        backend_->sampleHidden(v, h1, ph, a);
        backend_->sampleHidden(v, h2, ph, b);
        ASSERT_TRUE(h1 == h2) << "trial " << t;
    }
}

TEST_P(SamplingBackendConformance, DrivesGibbsChains)
{
    rbm::GibbsChain chain(*backend_, *rng_);
    chain.step(10);
    EXPECT_EQ(chain.visible().size(), 8u);
    EXPECT_EQ(chain.hidden().size(), 4u);
    for (float x : chain.visible())
        EXPECT_TRUE(x == 0.0f || x == 1.0f);
}

TEST_P(SamplingBackendConformance, DrivesFantasyAndConditionalSamplers)
{
    const data::Dataset fantasies =
        rbm::fantasySamples(*backend_, 6, 5, *rng_);
    EXPECT_EQ(fantasies.size(), 6u);
    EXPECT_EQ(fantasies.dim(), 8u);

    std::vector<float> mask(8, -1.0f);
    mask[0] = 1.0f;
    mask[1] = 0.0f;
    const data::Dataset conditioned =
        rbm::conditionalSamples(*backend_, mask, 3, 5, *rng_);
    ASSERT_EQ(conditioned.size(), 3u);
    for (std::size_t s = 0; s < conditioned.size(); ++s) {
        EXPECT_EQ(conditioned.samples(s, 0), 1.0f);
        EXPECT_EQ(conditioned.samples(s, 1), 0.0f);
    }
}

INSTANTIATE_TEST_SUITE_P(
    BothBackends, SamplingBackendConformance,
    ::testing::Values(BackendCase{"software"}, BackendCase{"fabric"}),
    [](const ::testing::TestParamInfo<BackendCase> &info) {
        return info.param.name;
    });

TEST(SoftwareGibbsBackend, MeansMatchTheModelConditionals)
{
    Rng rng(5);
    rbm::Rbm model(10, 6);
    model.initRandom(rng, 0.5f);
    rbm::SoftwareGibbsBackend backend(model);

    linalg::Vector v(10), h(6), ph, pv, want, dummy;
    Rng draw(6);
    for (std::size_t i = 0; i < 10; ++i)
        v[i] = draw.bernoulli(0.5) ? 1.0f : 0.0f;
    for (std::size_t j = 0; j < 6; ++j)
        h[j] = draw.bernoulli(0.5) ? 1.0f : 0.0f;

    backend.sampleHidden(v, dummy, ph, draw);
    model.hiddenProbs(v.data(), want);
    ASSERT_EQ(ph.size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j)
        EXPECT_FLOAT_EQ(ph[j], want[j]) << j;

    backend.sampleVisible(h, dummy, pv, draw);
    model.visibleProbs(h.data(), want);
    ASSERT_EQ(pv.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_NEAR(pv[i], want[i], 1e-6f) << i;
}

TEST(SoftwareGibbsBackend, SetModelRefreshesTheCachedTranspose)
{
    Rng rng(9);
    rbm::Rbm model(6, 4);
    model.initRandom(rng, 0.3f);
    rbm::SoftwareGibbsBackend backend(model);

    // Mutate the weights, refresh, and check the visible means track.
    model.weights()(2, 1) = 5.0f;
    backend.setModel(model);
    linalg::Vector h(4, 1.0f), dummy, pv, want;
    backend.sampleVisible(h, dummy, pv, rng);
    model.visibleProbs(h.data(), want);
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_NEAR(pv[i], want[i], 1e-6f) << i;
}

TEST(AnalogFabricBackend, BorrowedFabricIsShared)
{
    Rng rng(12);
    rbm::Rbm model = biasedModel(6, 3);
    machine::AnalogConfig cfg;
    machine::AnalogFabric fabric(6, 3, cfg, rng);
    fabric.program(model);
    accel::AnalogFabricBackend backend(fabric);
    EXPECT_EQ(&backend.fabric(), &fabric);
    EXPECT_EQ(backend.numVisible(), 6u);
    EXPECT_EQ(backend.numHidden(), 3u);
}

TEST(BackendFactory, ParsesKindNames)
{
    using accel::SamplingBackendKind;
    EXPECT_EQ(accel::samplingBackendKind("software"),
              SamplingBackendKind::Software);
    EXPECT_EQ(accel::samplingBackendKind("fabric"),
              SamplingBackendKind::AnalogFabric);
    EXPECT_EQ(accel::samplingBackendKind("analog"),
              SamplingBackendKind::AnalogFabric);
    EXPECT_EQ(accel::samplingBackendKind("unknown"),
              SamplingBackendKind::Software);
}
