/**
 * @file
 * Tests for model serialization and annealing schedules.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "ising/schedule.hpp"
#include "rbm/serialize.hpp"

using namespace ising;
using machine::AnnealSchedule;
using machine::ScheduleKind;
using util::Rng;

namespace {

rbm::Rbm
randomModel(std::size_t m, std::size_t n, std::uint64_t seed)
{
    rbm::Rbm model(m, n);
    Rng rng(seed);
    model.initRandom(rng, 0.5f);
    for (std::size_t i = 0; i < m; ++i)
        model.visibleBias()[i] = static_cast<float>(rng.gaussian(0, 1));
    for (std::size_t j = 0; j < n; ++j)
        model.hiddenBias()[j] = static_cast<float>(rng.gaussian(0, 1));
    return model;
}

} // namespace

TEST(Serialize, RbmRoundTripIsExact)
{
    const rbm::Rbm model = randomModel(9, 5, 1);
    std::stringstream ss;
    rbm::saveRbm(model, ss);
    const rbm::Rbm back = rbm::loadRbm(ss);
    EXPECT_EQ(back.numVisible(), 9u);
    EXPECT_EQ(back.numHidden(), 5u);
    EXPECT_EQ(back.weights(), model.weights());
    EXPECT_EQ(back.visibleBias(), model.visibleBias());
    EXPECT_EQ(back.hiddenBias(), model.hiddenBias());
}

TEST(Serialize, RbmFileRoundTrip)
{
    const rbm::Rbm model = randomModel(6, 4, 2);
    const std::string path = "/tmp/isingrbm_test_model.txt";
    rbm::saveRbm(model, path);
    const rbm::Rbm back = rbm::loadRbmFile(path);
    EXPECT_EQ(back.weights(), model.weights());
    std::remove(path.c_str());
}

TEST(Serialize, DbnRoundTripPreservesStack)
{
    Rng rng(3);
    rbm::Dbn stack({10, 6, 3});
    stack.initRandom(rng, 0.4f);
    std::stringstream ss;
    rbm::saveDbn(stack, ss);
    const rbm::Dbn back = rbm::loadDbn(ss);
    ASSERT_EQ(back.numLayers(), 2u);
    EXPECT_EQ(back.layer(0).weights(), stack.layer(0).weights());
    EXPECT_EQ(back.layer(1).weights(), stack.layer(1).weights());
    EXPECT_EQ(back.layer(1).hiddenBias(), stack.layer(1).hiddenBias());
}

TEST(Serialize, PreservesExtremeValues)
{
    rbm::Rbm model(2, 2);
    model.weights()(0, 0) = 1.0e-30f;
    model.weights()(0, 1) = -3.4e37f;
    model.weights()(1, 0) = 0.1f;  // not exactly representable
    std::stringstream ss;
    rbm::saveRbm(model, ss);
    const rbm::Rbm back = rbm::loadRbm(ss);
    EXPECT_EQ(back.weights(), model.weights());
}

TEST(Schedule, LinearEndpoints)
{
    const AnnealSchedule s(ScheduleKind::Linear, 0.1, 0.0);
    EXPECT_DOUBLE_EQ(s.at(0, 11), 0.1);
    EXPECT_DOUBLE_EQ(s.at(10, 11), 0.0);
    EXPECT_NEAR(s.at(5, 11), 0.05, 1e-12);
}

TEST(Schedule, GeometricDecaysFasterThanLinearMidway)
{
    const AnnealSchedule lin(ScheduleKind::Linear, 1.0, 0.01);
    const AnnealSchedule geo(ScheduleKind::Geometric, 1.0, 0.01);
    EXPECT_LT(geo.at(50, 101), lin.at(50, 101));
    EXPECT_NEAR(geo.at(0, 101), 1.0, 1e-12);
    EXPECT_NEAR(geo.at(100, 101), 0.01, 1e-12);
}

TEST(Schedule, CosineEndpointsAndMonotone)
{
    const AnnealSchedule cos(ScheduleKind::Cosine, 0.2, 0.0);
    EXPECT_NEAR(cos.at(0, 101), 0.2, 1e-12);
    EXPECT_NEAR(cos.at(100, 101), 0.0, 1e-12);
    double prev = cos.at(0, 101);
    for (std::size_t s = 1; s <= 100; ++s) {
        const double cur = cos.at(s, 101);
        ASSERT_LE(cur, prev + 1e-12);
        prev = cur;
    }
}

TEST(Schedule, ConstantIgnoresProgress)
{
    const AnnealSchedule c(ScheduleKind::Constant, 0.05, 0.0);
    EXPECT_DOUBLE_EQ(c.at(0, 100), 0.05);
    EXPECT_DOUBLE_EQ(c.at(99, 100), 0.05);
}

TEST(Schedule, SingleStepHorizonReturnsStart)
{
    for (auto kind : {ScheduleKind::Linear, ScheduleKind::Geometric,
                      ScheduleKind::Cosine}) {
        const AnnealSchedule s(kind, 0.3, 0.0);
        EXPECT_DOUBLE_EQ(s.at(0, 1), 0.3);
    }
}
