/**
 * @file
 * Serving response-cache tests: a cache hit must replay the exact
 * bytes the kernels would have produced (per op and model family),
 * the LRU must respect its byte budget, and the CRC-64 stamp keying
 * must invalidate across checkpoint overwrite, direct save, and
 * canary-gated promote -- with zero stale hits.  Also covers the
 * packed zero-copy gather (byte-equal to the float gather) and the
 * word-level copyBits primitive underneath it.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "engine/server.hpp"
#include "linalg/bits.hpp"
#include "rbm/serialize.hpp"

using namespace ising;
using engine::ModelRegistry;
using engine::Op;
using engine::Request;
using engine::Response;
using engine::Server;
using engine::ServerConfig;
using util::Rng;

namespace {

namespace fs = std::filesystem;

rbm::Rbm
randomRbm(std::size_t m, std::size_t n, std::uint64_t seed)
{
    rbm::Rbm model(m, n);
    Rng rng(seed);
    model.initRandom(rng, 0.5f);
    return model;
}

linalg::Matrix
randomBinaryRows(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    linalg::Matrix out(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t i = 0; i < cols; ++i)
            out(r, i) = rng.bernoulli(0.5) ? 1.0f : 0.0f;
    return out;
}

bool
sameBytes(const linalg::Matrix &a, const linalg::Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(float)) == 0;
}

class ServeCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("isingrbm_test_servecache_" +
                 std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()->name()))
                   .string();
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string dir_;
};

/** Ragged sizes on purpose: the packed plane's tail words matter. */
constexpr std::size_t kDim = 33;

void
putRbm(ModelRegistry &registry, const std::string &name,
       std::uint64_t seed)
{
    rbm::Checkpoint ckpt;
    ckpt.meta.backend = "cd";
    ckpt.model = randomRbm(kDim, 17, seed);
    registry.put(name, std::move(ckpt));
}

Request
makeRequest(const std::string &model, Op op, std::size_t rows,
            std::uint64_t seed)
{
    Request req;
    req.model = model;
    req.op = op;
    req.seed = seed;
    if (op == Op::Sample) {
        req.count = rows;
        req.steps = 4;
    } else {
        req.input = randomBinaryRows(rows, kDim, seed ^ 0xabcdef);
    }
    return req;
}

} // namespace

// ------------------------------------------------- hit == miss bytes

TEST_F(ServeCacheTest, HitReplaysMissBytesAcrossOpsAndFamilies)
{
    ModelRegistry registry(dir_);
    putRbm(registry, "plain", 1);

    Rng rng(2);
    rbm::ClassRbm clf(kDim, 3, 9);
    clf.initRandom(rng, 0.4f);
    rbm::Checkpoint clfCkpt;
    clfCkpt.model = clf;
    registry.put("clf", std::move(clfCkpt));

    rbm::Dbn stack({kDim, 12, 5});
    stack.initRandom(rng, 0.4f);
    rbm::Checkpoint deepCkpt;
    deepCkpt.model = stack;
    registry.put("deep", std::move(deepCkpt));

    struct Case
    {
        const char *model;
        Op op;
    };
    const Case cases[] = {
        {"plain", Op::Featurize}, {"plain", Op::Reconstruct},
        {"plain", Op::Sample},    {"clf", Op::Sample},
        {"clf", Op::Classify},    {"deep", Op::Featurize},
        {"deep", Op::Reconstruct},
    };
    for (const Case &c : cases) {
        ServerConfig config;
        config.cacheBytes = 1 << 20;
        Server cached(registry, config);
        Server uncached(registry);

        const Request req = makeRequest(c.model, c.op, 5, 11);
        const Response miss =
            std::move(cached.serve({req}).front());
        const Response hit = std::move(cached.serve({req}).front());
        const Response reference =
            std::move(uncached.serve({req}).front());
        ASSERT_TRUE(miss.status.ok()) << c.model;
        ASSERT_TRUE(hit.status.ok()) << c.model;
        EXPECT_TRUE(sameBytes(hit.output, miss.output))
            << c.model << "/" << engine::opName(c.op);
        EXPECT_TRUE(sameBytes(hit.output, reference.output))
            << c.model << "/" << engine::opName(c.op);
        EXPECT_EQ(hit.labels, miss.labels);
        EXPECT_EQ(hit.labels, reference.labels);
        const Server::Stats stats = cached.stats();
        EXPECT_EQ(stats.cacheHits, 1u)
            << c.model << "/" << engine::opName(c.op);
        EXPECT_EQ(stats.cacheMisses, 1u);
    }
}

TEST_F(ServeCacheTest, NonBinaryInputsCacheThroughTheFloatKey)
{
    ModelRegistry registry(dir_);
    putRbm(registry, "m", 3);
    ServerConfig config;
    config.cacheBytes = 1 << 20;
    Server server(registry, config);

    Request req = makeRequest("m", Op::Featurize, 4, 21);
    req.input(0, 0) = 0.25f;  // not a bit: forces the float-bytes key
    const Response miss = std::move(server.serve({req}).front());
    const Response hit = std::move(server.serve({req}).front());
    ASSERT_TRUE(hit.status.ok());
    EXPECT_TRUE(sameBytes(hit.output, miss.output));
    EXPECT_EQ(server.stats().cacheHits, 1u);

    // A single flipped bit in an otherwise identical request must key
    // differently -- for both the binary and the float domains.
    Request other = req;
    other.input(0, 0) = 1.0f;
    server.serve({other});
    EXPECT_EQ(server.stats().cacheHits, 1u);
    EXPECT_EQ(server.stats().cacheMisses, 2u);
}

// --------------------------------------------------------- eviction

TEST_F(ServeCacheTest, EvictionRespectsTheByteBudget)
{
    ModelRegistry registry(dir_);
    putRbm(registry, "m", 4);
    ServerConfig config;
    // Room for only a few 3x17 featurize responses.
    config.cacheBytes = 2048;
    Server server(registry, config);

    for (std::uint64_t seed = 0; seed < 24; ++seed)
        ASSERT_TRUE(server
                        .serve({makeRequest("m", Op::Featurize, 3,
                                            1000 + seed)})
                        .front()
                        .status.ok());
    const Server::Stats stats = server.stats();
    EXPECT_LE(stats.cacheBytes, config.cacheBytes);
    EXPECT_GT(stats.cacheEvictions, 0u);

    // Whatever survived still replays the right bytes.
    const Request last = makeRequest("m", Op::Featurize, 3, 1023);
    const Response again = std::move(server.serve({last}).front());
    Server plain(registry);
    const Response reference =
        std::move(plain.serve({last}).front());
    EXPECT_TRUE(sameBytes(again.output, reference.output));
}

TEST_F(ServeCacheTest, OversizedResponseIsServedButNeverCached)
{
    ModelRegistry registry(dir_);
    putRbm(registry, "m", 5);
    ServerConfig config;
    config.cacheBytes = 64;  // smaller than any response entry
    Server server(registry, config);

    const Request req = makeRequest("m", Op::Featurize, 4, 31);
    ASSERT_TRUE(server.serve({req}).front().status.ok());
    ASSERT_TRUE(server.serve({req}).front().status.ok());
    const Server::Stats stats = server.stats();
    EXPECT_EQ(stats.cacheHits, 0u);
    EXPECT_EQ(stats.cacheBytes, 0u);
}

// ------------------------------------------- stamp-keyed invalidation

TEST_F(ServeCacheTest, RegistryPutOverwriteInvalidates)
{
    ModelRegistry registry(dir_);
    putRbm(registry, "m", 6);
    ServerConfig config;
    config.cacheBytes = 1 << 20;
    Server server(registry, config);

    const Request req = makeRequest("m", Op::Reconstruct, 4, 41);
    const Response before = std::move(server.serve({req}).front());
    EXPECT_EQ(server.stats().cacheHits, 0u);

    // New parameters under the same name: the stamp changes, so the
    // old entry stops matching -- the next serve must re-execute.
    putRbm(registry, "m", 60);
    const Response after = std::move(server.serve({req}).front());
    ASSERT_TRUE(after.status.ok());
    EXPECT_EQ(server.stats().cacheHits, 0u);
    EXPECT_FALSE(sameBytes(after.output, before.output));

    // And the new model's responses cache under the new stamp.
    const Response replay = std::move(server.serve({req}).front());
    EXPECT_EQ(server.stats().cacheHits, 1u);
    EXPECT_TRUE(sameBytes(replay.output, after.output));
}

TEST_F(ServeCacheTest, DirectArchiveOverwriteInvalidates)
{
    ModelRegistry registry(dir_);
    putRbm(registry, "m", 7);
    ServerConfig config;
    config.cacheBytes = 1 << 20;
    Server server(registry, config);

    const Request req = makeRequest("m", Op::Featurize, 3, 51);
    const Response before = std::move(server.serve({req}).front());

    // Overwrite the archive behind the registry's back (a training
    // process streaming checkpoints): revalidation reloads, and the
    // reloaded stamp keys fresh entries.
    rbm::Checkpoint next;
    next.meta.backend = "cd";
    next.model = randomRbm(kDim, 17, 70);
    rbm::saveCheckpoint(next, registry.pathFor("m"));

    const Response after = std::move(server.serve({req}).front());
    ASSERT_TRUE(after.status.ok());
    EXPECT_EQ(server.stats().cacheHits, 0u);
    EXPECT_FALSE(sameBytes(after.output, before.output));
}

TEST_F(ServeCacheTest, PromoteInvalidates)
{
    ModelRegistry registry(dir_);
    putRbm(registry, "m", 8);
    ServerConfig config;
    config.cacheBytes = 1 << 20;
    Server server(registry, config);

    const Request req = makeRequest("m", Op::Reconstruct, 4, 61);
    const Response before = std::move(server.serve({req}).front());

    // Publish a candidate through the canary gate; lenient tolerance
    // so random-vs-random passes and the swap actually happens.
    rbm::Checkpoint cand;
    cand.meta.backend = "cd";
    cand.model = randomRbm(kDim, 17, 80);
    const std::string candPath =
        (fs::path(dir_) / "cand.ckpt").string();
    rbm::saveCheckpoint(cand, candPath);
    engine::CanaryConfig canary;
    canary.tolerance = 1e9;
    const auto promoted = registry.promote("m", candPath, canary);
    ASSERT_TRUE(promoted.ok());
    ASSERT_TRUE(promoted.value().promoted);

    const Response after = std::move(server.serve({req}).front());
    ASSERT_TRUE(after.status.ok());
    EXPECT_EQ(server.stats().cacheHits, 0u);
    EXPECT_FALSE(sameBytes(after.output, before.output));
}

TEST_F(ServeCacheTest, LegacyUnstampedArchiveNeverHits)
{
    ModelRegistry registry(dir_);
    putRbm(registry, "m", 9);

    // Strip the integrity trailer the way a pre-trailer writer would
    // have produced the archive: no checksum line, no "trailer crc64"
    // meta entry, meta count decremented.
    const std::string file = registry.pathFor("m");
    std::string bytes;
    {
        std::ifstream is(file, std::ios::binary);
        std::ostringstream os;
        os << is.rdbuf();
        bytes = os.str();
    }
    const std::size_t tail = bytes.rfind("checksum crc64 ");
    ASSERT_NE(tail, std::string::npos);
    bytes.resize(tail);
    const std::size_t decl = bytes.find("trailer crc64\n");
    ASSERT_NE(decl, std::string::npos);
    bytes.erase(decl, std::string("trailer crc64\n").size());
    const std::size_t meta = bytes.find("section meta ");
    ASSERT_NE(meta, std::string::npos);
    const std::size_t countAt =
        meta + std::string("section meta ").size();
    const std::size_t countEnd = bytes.find('\n', countAt);
    const int count =
        std::stoi(bytes.substr(countAt, countEnd - countAt));
    bytes = bytes.substr(0, countAt) + std::to_string(count - 1) +
            bytes.substr(countEnd);
    {
        std::ofstream os(file, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }
    registry.evict("m");

    ServerConfig config;
    config.cacheBytes = 1 << 20;
    Server server(registry, config);
    const Request req = makeRequest("m", Op::Featurize, 3, 71);
    const Response first = std::move(server.serve({req}).front());
    const Response second = std::move(server.serve({req}).front());
    ASSERT_TRUE(first.status.ok());
    ASSERT_TRUE(second.status.ok());
    EXPECT_TRUE(sameBytes(first.output, second.output));
    const Server::Stats stats = server.stats();
    EXPECT_EQ(stats.cacheHits, 0u);  // no stamp, no sound key
    EXPECT_EQ(stats.cacheBytes, 0u);
    EXPECT_EQ(stats.cacheMisses, 2u);
}

// ------------------------------------------- partial-hit coalescing

TEST_F(ServeCacheTest, PartialHitGroupsExecuteOnlyTheMisses)
{
    ModelRegistry registry(dir_);
    putRbm(registry, "m", 10);
    ServerConfig config;
    config.cacheBytes = 1 << 20;
    Server server(registry, config);

    const Request warm = makeRequest("m", Op::Featurize, 4, 81);
    const Response warmRes = std::move(server.serve({warm}).front());
    const std::size_t rowsAfterWarm = server.stats().rows;

    // One warm (hit) and one cold (miss) request in a single flush:
    // the hit resolves before grouping, so the kernels see only the
    // cold rows.
    const Request cold = makeRequest("m", Op::Featurize, 3, 82);
    auto responses = server.serve({warm, cold});
    ASSERT_TRUE(responses[0].status.ok());
    ASSERT_TRUE(responses[1].status.ok());
    EXPECT_TRUE(sameBytes(responses[0].output, warmRes.output));
    const Server::Stats stats = server.stats();
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.rows, rowsAfterWarm + 3);  // cold rows only

    // The cold response must match an uncached server bit for bit.
    Server plain(registry);
    const Response reference =
        std::move(plain.serve({cold}).front());
    EXPECT_TRUE(sameBytes(responses[1].output, reference.output));
}

TEST_F(ServeCacheTest, DuplicateRequestsInOneFlushStayConsistent)
{
    ModelRegistry registry(dir_);
    putRbm(registry, "m", 11);
    ServerConfig config;
    config.cacheBytes = 1 << 20;
    Server server(registry, config);

    const Request req = makeRequest("m", Op::Reconstruct, 3, 91);
    auto twice = server.serve({req, req});
    ASSERT_TRUE(twice[0].status.ok());
    ASSERT_TRUE(twice[1].status.ok());
    EXPECT_TRUE(sameBytes(twice[0].output, twice[1].output));

    // Both missed (they flushed together), one entry was inserted,
    // and a later serve hits it.
    const Response replay = std::move(server.serve({req}).front());
    EXPECT_TRUE(sameBytes(replay.output, twice[0].output));
    EXPECT_EQ(server.stats().cacheHits, 1u);
}

// -------------------------------------- packed gather & group slots

TEST_F(ServeCacheTest, PackedAndLegacyGatherProduceIdenticalBytes)
{
    ModelRegistry registry(dir_);
    putRbm(registry, "m", 12);

    ServerConfig packed;
    packed.packedGather = true;
    ServerConfig legacy;
    legacy.packedGather = false;
    Server packedServer(registry, packed);
    Server legacyServer(registry, legacy);

    for (const Op op : {Op::Featurize, Op::Reconstruct}) {
        // Mixed-size coalesced batch, including a non-binary request
        // that forces the float fallback inside the packed server.
        Request binA = makeRequest("m", op, 4, 13);
        Request binB = makeRequest("m", op, 7, 14);
        Request fuzzy = makeRequest("m", op, 2, 15);
        fuzzy.input(1, 2) = 0.5f;
        auto fromPacked =
            packedServer.serve({binA, binB, fuzzy});
        auto fromLegacy =
            legacyServer.serve({binA, binB, fuzzy});
        for (std::size_t i = 0; i < fromPacked.size(); ++i) {
            ASSERT_TRUE(fromPacked[i].status.ok());
            EXPECT_TRUE(sameBytes(fromPacked[i].output,
                                  fromLegacy[i].output))
                << engine::opName(op) << " request " << i;
        }
    }
}

TEST_F(ServeCacheTest, GroupSlotsStopGrowingInSteadyState)
{
    ModelRegistry registry(dir_);
    putRbm(registry, "a", 16);
    putRbm(registry, "b", 17);
    Server server(registry);

    const auto mixedFlush = [&] {
        server.serve({makeRequest("a", Op::Featurize, 2, 1),
                      makeRequest("b", Op::Featurize, 2, 2),
                      makeRequest("a", Op::Reconstruct, 2, 3)});
    };
    mixedFlush();
    const std::size_t grown = server.stats().groupResizes;
    EXPECT_EQ(grown, 3u);  // three distinct (model, op) slots
    for (int i = 0; i < 5; ++i)
        mixedFlush();
    // Same traffic shape, zero further slot growth or gather resizes.
    EXPECT_EQ(server.stats().groupResizes, grown);
}

TEST_F(ServeCacheTest, ShadowExecutionNeverTouchesTheCache)
{
    // The live-canary shadow runs the candidate beside the incumbent;
    // only the incumbent's bytes may land in (or be served from) the
    // response cache.  A cache hit resolves before grouping, so the
    // replayed request must not shadow either.
    ModelRegistry registry(dir_);
    putRbm(registry, "m", 16);
    const std::string cand = dir_ + "/cand.rbm";
    rbm::Checkpoint ckpt;
    ckpt.meta.backend = "cd";
    ckpt.meta.epoch = 2;
    ckpt.model = randomRbm(kDim, 17, 16);  // identical weights
    rbm::saveCheckpoint(ckpt, cand);
    ASSERT_TRUE(registry.stageCandidate("m", cand).ok());

    ServerConfig config;
    config.cacheBytes = 1 << 20;
    config.canary.model = "m";
    config.canary.fraction = 1.0;
    config.canary.minShadows = 1u << 20;  // observe, never promote
    config.canary.maxDivergence = 1e9;    // never quarantine
    Server server(registry, config);

    const Request req = makeRequest("m", Op::Reconstruct, 3, 7);
    const auto first = server.serve({req});
    ASSERT_TRUE(first[0].status.ok());
    EXPECT_EQ(server.stats().canaryShadows, 1u);
    EXPECT_EQ(server.stats().cacheMisses, 1u);

    const auto replay = server.serve({req});
    ASSERT_TRUE(replay[0].status.ok());
    EXPECT_TRUE(sameBytes(replay[0].output, first[0].output));
    EXPECT_EQ(server.stats().cacheHits, 1u);
    // The hit resolved pre-group: no second shadow, no kernel work.
    EXPECT_EQ(server.stats().canaryShadows, 1u);
    EXPECT_EQ(server.stats().canaryQuarantines, 0u);
    EXPECT_EQ(server.stats().canaryPromotions, 0u);
}

// ------------------------------------------------- copyBits primitive

TEST(CopyBits, WordAlignedAndMisalignedRuns)
{
    for (const std::size_t srcBit : {0u, 1u, 7u, 63u, 64u, 65u}) {
        for (const std::size_t dstBit : {0u, 3u, 63u, 64u, 70u}) {
            for (const std::size_t count : {1u, 17u, 64u, 129u, 200u}) {
                std::vector<std::uint64_t> src(8), dst(8), expect(8);
                Rng rng(srcBit * 1000 + dstBit * 10 + count);
                for (auto &w : src)
                    w = rng.next();
                for (std::size_t i = 0; i < dst.size(); ++i)
                    dst[i] = ~src[i];
                expect = dst;
                for (std::size_t i = 0; i < count; ++i) {
                    const bool bit =
                        (src[(srcBit + i) / 64] >>
                         ((srcBit + i) % 64)) & 1u;
                    const std::size_t at = dstBit + i;
                    if (bit)
                        expect[at / 64] |= std::uint64_t{1} << (at % 64);
                    else
                        expect[at / 64] &=
                            ~(std::uint64_t{1} << (at % 64));
                }
                linalg::copyBits(dst.data(), dstBit, src.data(), srcBit,
                                 count);
                EXPECT_EQ(dst, expect)
                    << "src+" << srcBit << " dst+" << dstBit << " n"
                    << count;
            }
        }
    }
}

TEST(CopyBits, BitMatrixRowCopyMatchesUnpack)
{
    linalg::BitMatrix a(3, 70);
    Rng rng(99);
    linalg::Vector row(70);
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t i = 0; i < 70; ++i)
            row[i] = rng.bernoulli(0.5) ? 1.0f : 0.0f;
        a.packRowFrom(r, row.data());
    }
    linalg::BitMatrix b(3, 70);
    for (std::size_t r = 0; r < a.rows(); ++r)
        b.copyRowFrom(r, a, a.rows() - 1 - r);
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t i = 0; i < 70; ++i)
            EXPECT_EQ(b.test(r, i), a.test(a.rows() - 1 - r, i));
}
