/**
 * @file
 * SIMD kernel tiers: byte-identity of every explicit tier against the
 * generic reference kernels, and the CPUID/env/options dispatch rules.
 *
 *  - each compiled-in tier the host can run (AVX2, AVX-512) reproduces
 *    the generic kernel bit for bit, kernel by kernel, on ragged
 *    shapes (column widths 1..129 crossing the 128-wide accumulator
 *    block and the 8/16-lane vector tails, word counts 1..9 crossing
 *    the fixed-trip and masked-remainder reduce paths);
 *  - the dispatcher's table() / detectedTier() / envTier() /
 *    defaultTier() invariants hold, including the ISINGRBM_ISA env
 *    override and its precedence below SamplingOptions::isa;
 *  - the ISINGRBM_SPARSE_THRESHOLD env pin sits between an explicit
 *    option and the per-tier probe, and rejects out-of-range values;
 *  - SoftwareGibbsBackend chains and CdTrainer weights are
 *    byte-identical across every tier (including the Scalar float
 *    route) at worker counts 1 and 4.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "linalg/bitops.hpp"
#include "rbm/cd_trainer.hpp"
#include "rbm/sampling_backend.hpp"

using namespace ising;
using util::Rng;
namespace simd = linalg::simd;

namespace {

/** Ragged-by-default model with strong structure. */
rbm::Rbm
testModel(std::size_t m, std::size_t n, std::uint64_t seed = 3)
{
    Rng rng(seed);
    rbm::Rbm model(m, n);
    model.initRandom(rng, 0.6f);
    return model;
}

/** Binary batch at a target activity level. */
linalg::Matrix
activityBatch(std::size_t rows, std::size_t cols, double activity,
              Rng &rng)
{
    linalg::Matrix out(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            out(r, c) = rng.bernoulli(activity) ? 1.0f : 0.0f;
    return out;
}

linalg::BitMatrix
packRows(const linalg::Matrix &m)
{
    linalg::BitMatrix out(m.rows(), m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r)
        out.packRowFrom(r, m.row(r));
    return out;
}

std::vector<Rng>
streams(std::size_t rows, std::uint64_t seed)
{
    std::vector<Rng> rngs;
    for (std::size_t r = 0; r < rows; ++r)
        rngs.push_back(Rng::stream(seed, r));
    return rngs;
}

/** The SIMD tiers this host/build can actually run (never Generic). */
std::vector<const simd::KernelTable *>
simdTiers()
{
    std::vector<const simd::KernelTable *> tiers;
    for (const simd::IsaTier tier :
         {simd::IsaTier::Avx2, simd::IsaTier::Avx512})
        if (const simd::KernelTable *kt = simd::table(tier))
            tiers.push_back(kt);
    return tiers;
}

/** Every backend-selectable tier: Scalar, Generic, plus the SIMD
 *  tiers available here.  Scalar routes through the float kernels --
 *  the reproducibility contract says those match too. */
std::vector<simd::IsaTier>
backendTiers()
{
    std::vector<simd::IsaTier> tiers = {simd::IsaTier::Scalar,
                                        simd::IsaTier::Generic};
    for (const simd::KernelTable *kt : simdTiers())
        tiers.push_back(kt->tier);
    return tiers;
}

/** Save/restore one environment variable around a test body. */
class EnvGuard
{
  public:
    explicit EnvGuard(const char *name) : name_(name)
    {
        const char *cur = std::getenv(name);
        had_ = cur != nullptr;
        if (had_)
            saved_ = cur;
    }
    ~EnvGuard()
    {
        if (had_)
            ::setenv(name_, saved_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_;
    std::string saved_;
};

/** Column widths crossing every vector-tail case: sub-lane, one ymm
 *  lane, one zmm lane, odd tails on both, and the 128-wide fixed
 *  accumulator block with a one-column overhang. */
const std::size_t kWidths[] = {1, 7, 8, 16, 37, 64, 70, 127, 128, 129};

} // namespace

TEST(SimdKernels, AccumulateRowsMaskedMatchesGenericOnRaggedShapes)
{
    const simd::KernelTable &gen = *simd::table(simd::IsaTier::Generic);
    Rng rng(11);
    for (const simd::KernelTable *kt : simdTiers()) {
        for (const std::size_t n : kWidths) {
            for (const std::size_t m : {1u, 67u, 129u}) {
                const rbm::Rbm model = testModel(m, n, 3 + m + n);
                const linalg::Matrix batch =
                    activityBatch(1, m, 0.4, rng);
                linalg::BitVector bits;
                bits.packFrom(batch.row(0), m);

                linalg::Vector ref, got;
                linalg::accumulateRowsMasked(gen, model.weights(), bits,
                                             model.hiddenBias(), ref);
                linalg::accumulateRowsMasked(*kt, model.weights(), bits,
                                             model.hiddenBias(), got);
                ASSERT_EQ(ref, got) << kt->name << " " << m << "x" << n;
            }
        }
    }
}

TEST(SimdKernels, BatchAndActiveTilesMatchGenericAcrossColumnRanges)
{
    const simd::KernelTable &gen = *simd::table(simd::IsaTier::Generic);
    Rng rng(13);
    const std::size_t m = 70, batch = 5;
    for (const simd::KernelTable *kt : simdTiers()) {
        for (const std::size_t n : kWidths) {
            const rbm::Rbm model = testModel(m, n, 5 + n);
            const linalg::Matrix v = activityBatch(batch, m, 0.3, rng);
            const linalg::BitMatrix bits = packRows(v);
            linalg::SparseBitView view;
            view.build(bits);

            // Column splits crossing the 128-wide accumulator block
            // boundary and sub-block ranges.
            std::vector<std::pair<std::size_t, std::size_t>> ranges = {
                {0, n}};
            if (n > 2)
                ranges.push_back({n / 3, n - 1});
            if (n > 128)
                ranges.push_back({100, n});
            for (const auto &[cb, ce] : ranges) {
                linalg::Matrix ref(batch, n), got(batch, n);
                linalg::accumulateBatchTile(gen, model.weights(), bits,
                                            model.hiddenBias(), ref, 0,
                                            batch, cb, ce);
                linalg::accumulateBatchTile(*kt, model.weights(), bits,
                                            model.hiddenBias(), got, 0,
                                            batch, cb, ce);
                for (std::size_t r = 0; r < batch; ++r)
                    for (std::size_t c = cb; c < ce; ++c)
                        ASSERT_EQ(ref(r, c), got(r, c))
                            << kt->name << " " << n << " [" << cb << ","
                            << ce << ") @" << r << "," << c;

                linalg::accumulateActiveTile(gen, model.weights(), view,
                                             model.hiddenBias(), ref, 0,
                                             batch, cb, ce);
                linalg::accumulateActiveTile(*kt, model.weights(), view,
                                             model.hiddenBias(), got, 0,
                                             batch, cb, ce);
                for (std::size_t r = 0; r < batch; ++r)
                    for (std::size_t c = cb; c < ce; ++c)
                        ASSERT_EQ(ref(r, c), got(r, c))
                            << kt->name << " sparse " << n;
            }
        }
    }
}

TEST(SimdKernels, FusedHalfSweepsMatchGenericWithIdenticalDraws)
{
    const simd::KernelTable &gen = *simd::table(simd::IsaTier::Generic);
    Rng rng(17);
    for (const simd::KernelTable *kt : simdTiers()) {
        for (const std::size_t n : {37u, 129u}) {
            const rbm::Rbm model = testModel(70, n, 7 + n);
            const linalg::Matrix v = activityBatch(1, 70, 0.4, rng);
            linalg::BitVector in;
            in.packFrom(v.row(0), 70);

            Rng refRng = Rng::stream(5, 0), gotRng = Rng::stream(5, 0);
            linalg::BitVector refOut, gotOut;
            linalg::Vector refMeans, gotMeans;
            linalg::affineSigmoidBernoulli(gen, model.weights(), in,
                                           model.hiddenBias(), refOut,
                                           refMeans, refRng);
            linalg::affineSigmoidBernoulli(*kt, model.weights(), in,
                                           model.hiddenBias(), gotOut,
                                           gotMeans, gotRng);
            ASSERT_EQ(refMeans, gotMeans) << kt->name;
            for (std::size_t j = 0; j < n; ++j)
                ASSERT_EQ(refOut.test(j), gotOut.test(j))
                    << kt->name << " bit " << j;

            Rng sparseRng = Rng::stream(5, 0);
            linalg::BitVector sparseOut;
            linalg::Vector sparseMeans;
            linalg::affineSigmoidBernoulliSparse(
                *kt, model.weights(), in, model.hiddenBias(), sparseOut,
                sparseMeans, sparseRng);
            ASSERT_EQ(refMeans, sparseMeans) << kt->name << " sparse";
            for (std::size_t j = 0; j < n; ++j)
                ASSERT_EQ(refOut.test(j), sparseOut.test(j))
                    << kt->name << " sparse bit " << j;
        }
    }
}

TEST(SimdKernels, GradientReduceMatchesGenericAcrossWordCounts)
{
    const simd::KernelTable &gen = *simd::table(simd::IsaTier::Generic);
    const std::size_t m = 67, n = 35;
    Rng rng(19);
    // Batch sizes resolving to 1..9 packed words: the fixed-trip
    // specializations (1/2/4/8), odd in-between counts, and the >8
    // chunked-plus-masked-remainder path of the AVX-512 kernel.
    for (const std::size_t batch :
         {1u, 63u, 65u, 128u, 129u, 255u, 256u, 512u, 520u}) {
        const linalg::Matrix vpos = activityBatch(batch, m, 0.5, rng);
        const linalg::Matrix hpos = activityBatch(batch, n, 0.4, rng);
        const linalg::Matrix vneg = activityBatch(batch, m, 0.3, rng);
        const linalg::Matrix hneg = activityBatch(batch, n, 0.6, rng);
        linalg::BitMatrix posT, negT, hposT, hnegT;
        linalg::packTransposed(vpos, posT);
        linalg::packTransposed(vneg, negT);
        linalg::packTransposed(hpos, hposT);
        linalg::packTransposed(hneg, hnegT);

        linalg::Matrix ref(m, n);
        linalg::outerCountDiff(gen, posT, hposT, negT, hnegT, ref, 0, m);
        linalg::Vector refCounts(m);
        linalg::rowCounts(gen, posT, refCounts.data());
        const std::size_t refOnes = linalg::countOnes(gen, posT);

        for (const simd::KernelTable *kt : simdTiers()) {
            linalg::Matrix got(m, n);
            // Two row chunks, exercising rowBegin/rowEnd slicing.
            linalg::outerCountDiff(*kt, posT, hposT, negT, hnegT, got, 0,
                                   m / 3);
            linalg::outerCountDiff(*kt, posT, hposT, negT, hnegT, got,
                                   m / 3, m);
            ASSERT_EQ(ref, got) << kt->name << " batch " << batch;

            linalg::Vector counts(m);
            linalg::rowCounts(*kt, posT, counts.data());
            ASSERT_EQ(refCounts, counts) << kt->name;
            ASSERT_EQ(refOnes, linalg::countOnes(*kt, posT)) << kt->name;
        }
    }
}

TEST(SimdDispatch, TableAvailabilityInvariants)
{
    // Auto and Scalar never name a kernel table; Generic always does.
    EXPECT_EQ(simd::table(simd::IsaTier::Auto), nullptr);
    EXPECT_EQ(simd::table(simd::IsaTier::Scalar), nullptr);
    const simd::KernelTable *gen = simd::table(simd::IsaTier::Generic);
    ASSERT_NE(gen, nullptr);
    EXPECT_EQ(gen->tier, simd::IsaTier::Generic);
    EXPECT_STREQ(gen->name, "generic");

    // Whatever CPUID detects must be runnable and self-describing.
    const simd::IsaTier detected = simd::detectedTier();
    EXPECT_TRUE(detected == simd::IsaTier::Generic ||
                detected == simd::IsaTier::Avx2 ||
                detected == simd::IsaTier::Avx512);
    const simd::KernelTable *kt = simd::table(detected);
    ASSERT_NE(kt, nullptr);
    EXPECT_EQ(kt->tier, detected);
    EXPECT_STREQ(kt->name, simd::tierName(detected));

    // Round-trip every tier name through the parser.
    for (const simd::IsaTier tier :
         {simd::IsaTier::Auto, simd::IsaTier::Scalar,
          simd::IsaTier::Generic, simd::IsaTier::Avx2,
          simd::IsaTier::Avx512}) {
        simd::IsaTier parsed;
        ASSERT_TRUE(simd::tierFromName(simd::tierName(tier), parsed));
        EXPECT_EQ(parsed, tier);
    }
    simd::IsaTier parsed;
    EXPECT_FALSE(simd::tierFromName("sse9", parsed));
}

TEST(SimdDispatch, EnvOverridePrecedence)
{
    EnvGuard guard("ISINGRBM_ISA");

    ::unsetenv("ISINGRBM_ISA");
    EXPECT_EQ(simd::envTier(), simd::IsaTier::Auto);
    EXPECT_EQ(simd::defaultTier(), simd::detectedTier());

    // Empty string means unset (the CI matrix passes ISINGRBM_ISA=""
    // on the auto leg).
    ::setenv("ISINGRBM_ISA", "", 1);
    EXPECT_EQ(simd::envTier(), simd::IsaTier::Auto);

    ::setenv("ISINGRBM_ISA", "generic", 1);
    EXPECT_EQ(simd::envTier(), simd::IsaTier::Generic);
    EXPECT_EQ(simd::defaultTier(), simd::IsaTier::Generic);
    EXPECT_EQ(simd::activeTable().tier, simd::IsaTier::Generic);

    // Scalar names the float pipeline: no packed table, so callers of
    // the plain kernel overloads fall back to the generic kernels.
    ::setenv("ISINGRBM_ISA", "scalar", 1);
    EXPECT_EQ(simd::envTier(), simd::IsaTier::Scalar);
    EXPECT_EQ(simd::defaultTier(), simd::IsaTier::Scalar);
    EXPECT_EQ(simd::activeTable().tier, simd::IsaTier::Generic);

    // Unknown names warn (once) and fall back to auto-detection.
    ::setenv("ISINGRBM_ISA", "sse9", 1);
    EXPECT_EQ(simd::envTier(), simd::IsaTier::Auto);
    EXPECT_EQ(simd::defaultTier(), simd::detectedTier());
}

TEST(SimdDispatch, OptionsBeatEnvAndScalarIsHonored)
{
    EnvGuard guard("ISINGRBM_ISA");

    // Auto option defers to the env override...
    ::setenv("ISINGRBM_ISA", "generic", 1);
    rbm::SamplingOptions opts;
    EXPECT_EQ(rbm::resolveIsaTier(opts), simd::IsaTier::Generic);

    // ...but an explicit option outranks the env.
    opts.isa = simd::detectedTier();
    EXPECT_EQ(rbm::resolveIsaTier(opts), simd::detectedTier());

    opts.isa = simd::IsaTier::Scalar;
    EXPECT_EQ(rbm::resolveIsaTier(opts), simd::IsaTier::Scalar);

    ::unsetenv("ISINGRBM_ISA");
    opts.isa = simd::IsaTier::Auto;
    EXPECT_EQ(rbm::resolveIsaTier(opts), simd::detectedTier());

    // A Scalar backend carries no kernel table; any other tier does.
    const rbm::Rbm model = testModel(16, 8);
    rbm::SamplingOptions scalarOpts;
    scalarOpts.isa = simd::IsaTier::Scalar;
    scalarOpts.sparseThreshold = 0.0;
    const rbm::SoftwareGibbsBackend scalarBackend(model, nullptr,
                                                  scalarOpts);
    EXPECT_EQ(scalarBackend.isaTier(), simd::IsaTier::Scalar);
    EXPECT_EQ(scalarBackend.kernelTable(), nullptr);

    rbm::SamplingOptions genOpts;
    genOpts.isa = simd::IsaTier::Generic;
    genOpts.sparseThreshold = 0.0;
    const rbm::SoftwareGibbsBackend genBackend(model, nullptr, genOpts);
    EXPECT_EQ(genBackend.isaTier(), simd::IsaTier::Generic);
    ASSERT_NE(genBackend.kernelTable(), nullptr);
    EXPECT_EQ(genBackend.kernelTable()->tier, simd::IsaTier::Generic);
}

TEST(SimdDispatch, SparseThresholdEnvPin)
{
    EnvGuard guard("ISINGRBM_SPARSE_THRESHOLD");

    // The env pin replaces the per-tier probe...
    ::setenv("ISINGRBM_SPARSE_THRESHOLD", "0.25", 1);
    rbm::SamplingOptions opts;
    EXPECT_EQ(rbm::resolveSparseThreshold(opts), 0.25);

    // ...but an explicit option outranks the pin.
    opts.sparseThreshold = 0.75;
    EXPECT_EQ(rbm::resolveSparseThreshold(opts), 0.75);

    // Out-of-range or trailing-garbage values are rejected (warn once,
    // fall through).  Resolving with the Scalar tier avoids invoking
    // the timing probe inside a unit test: its fall-through is 0.
    opts.sparseThreshold = -1.0;
    opts.isa = simd::IsaTier::Scalar;
    for (const char *bad : {"1.5", "-0.1", "0.2x", "nope"}) {
        ::setenv("ISINGRBM_SPARSE_THRESHOLD", bad, 1);
        EXPECT_EQ(rbm::resolveSparseThreshold(opts), 0.0) << bad;
    }

    ::unsetenv("ISINGRBM_SPARSE_THRESHOLD");
    EXPECT_EQ(rbm::resolveSparseThreshold(opts), 0.0);
}

TEST(SimdBackend, ChainsByteIdenticalAcrossTiersAndWorkers)
{
    const rbm::Rbm model = testModel(70, 37);
    exec::ThreadPool serial(1), threaded(4);
    Rng rng(29);
    for (const double activity : {0.06, 0.5}) {
        const linalg::Matrix v = activityBatch(6, 70, activity, rng);
        const linalg::Matrix h0 = activityBatch(8, 37, activity, rng);
        linalg::Matrix refH, refPh, refAv, refAh;
        bool first = true;
        // Thresholds 0 and 1 pin the dense and sparse paths per tier
        // (the calibrated probe is covered by test_sparse_kernels).
        for (const simd::IsaTier tier : backendTiers()) {
            for (const double threshold : {0.0, 1.0}) {
                for (exec::ThreadPool *pool : {&serial, &threaded}) {
                    rbm::SamplingOptions opts;
                    opts.isa = tier;
                    opts.sparseThreshold = threshold;
                    const rbm::SoftwareGibbsBackend backend(model, pool,
                                                            opts);
                    auto rngs = streams(6, 31);
                    linalg::Matrix h, ph;
                    backend.sampleHiddenBatch(v, h, ph, rngs.data());

                    linalg::Matrix ah = h0, av, pav, pah;
                    auto annealRngs = streams(8, 41);
                    backend.annealBatch(5, av, ah, pav, pah,
                                        annealRngs.data());
                    if (first) {
                        refH = h;
                        refPh = ph;
                        refAv = av;
                        refAh = ah;
                        first = false;
                    } else {
                        const char *name = simd::tierName(tier);
                        EXPECT_EQ(refH, h) << name << " " << threshold;
                        EXPECT_EQ(refPh, ph) << name << " " << threshold;
                        EXPECT_EQ(refAv, av) << name << " " << threshold;
                        EXPECT_EQ(refAh, ah) << name << " " << threshold;
                    }
                }
            }
        }
    }
}

TEST(SimdTrainer, CdTrainingBitIdenticalAcrossTiersAndWorkers)
{
    Rng dataRng(47);
    data::Dataset train;
    train.name = "simd-cd";
    train.samples = activityBatch(60, 67, 0.3, dataRng);

    exec::ThreadPool serial(1), threaded(4);
    rbm::Rbm reference;
    bool first = true;
    for (const simd::IsaTier tier : backendTiers()) {
        for (exec::ThreadPool *pool : {&serial, &threaded}) {
            rbm::Rbm model = testModel(67, 35, 7);
            rbm::CdConfig cfg;
            cfg.batchSize = 20;
            cfg.k = 2;
            cfg.momentum = 0.5;
            cfg.pool = pool;
            cfg.sampling.isa = tier;
            cfg.sampling.sparseThreshold = 0.0;  // dense reduce path
            Rng rng(51);
            rbm::CdTrainer trainer(model, cfg, rng);
            trainer.trainEpoch(train);
            trainer.trainEpoch(train);
            if (first) {
                reference = model;
                first = false;
            } else {
                const char *name = simd::tierName(tier);
                EXPECT_EQ(reference.weights(), model.weights()) << name;
                EXPECT_EQ(reference.visibleBias(), model.visibleBias())
                    << name;
                EXPECT_EQ(reference.hiddenBias(), model.hiddenBias())
                    << name;
            }
        }
    }
}
