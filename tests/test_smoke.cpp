/**
 * @file
 * Build smoke test: the library links and basic construction works.
 */

#include <gtest/gtest.h>

#include "rbm/rbm.hpp"

TEST(Smoke, RbmConstructs)
{
    ising::rbm::Rbm model(8, 4);
    EXPECT_EQ(model.numVisible(), 8u);
    EXPECT_EQ(model.numHidden(), 4u);
}
