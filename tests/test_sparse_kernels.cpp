/**
 * @file
 * Sparse-streamed kernel tier: bit-identity against the dense packed
 * kernels and the dispatcher's invariance guarantees.
 *
 *  - SparseBitView extracts exactly the set bits, ascending;
 *  - every sparse kernel (scalar gather, fused half-sweep, batched
 *    tile, gradient reduces) reproduces its dense twin bit for bit,
 *    across ragged shapes (widths not divisible by 64) and activity
 *    levels 0%, a single bit, ~50% and 100%;
 *  - the SoftwareGibbsBackend dispatcher produces identical chains
 *    whichever path it picks (thresholds 0 / 1 / auto), at worker
 *    counts 1 and 4 and across batch chunk boundaries;
 *  - CdTrainer's gradient-reduce dispatch leaves trained weights
 *    bit-identical between forced-sparse and forced-dense runs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "exec/thread_pool.hpp"
#include "linalg/bitops.hpp"
#include "rbm/cd_trainer.hpp"
#include "rbm/sampling_backend.hpp"

using namespace ising;
using util::Rng;

namespace {

/** Ragged-by-default model with strong structure. */
rbm::Rbm
testModel(std::size_t m, std::size_t n, std::uint64_t seed = 3)
{
    Rng rng(seed);
    rbm::Rbm model(m, n);
    model.initRandom(rng, 0.6f);
    return model;
}

/** Binary batch at a target activity level. */
linalg::Matrix
activityBatch(std::size_t rows, std::size_t cols, double activity,
              Rng &rng)
{
    linalg::Matrix out(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            out(r, c) = rng.bernoulli(activity) ? 1.0f : 0.0f;
    return out;
}

linalg::BitMatrix
packRows(const linalg::Matrix &m)
{
    linalg::BitMatrix out(m.rows(), m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r)
        out.packRowFrom(r, m.row(r));
    return out;
}

std::vector<Rng>
streams(std::size_t rows, std::uint64_t seed)
{
    std::vector<Rng> rngs;
    for (std::size_t r = 0; r < rows; ++r)
        rngs.push_back(Rng::stream(seed, r));
    return rngs;
}

/** The activity levels every identity test sweeps: empty, one bit,
 *  half-dense, saturated. */
const double kLevels[] = {0.0, -1.0, 0.5, 1.0};  // -1 = single bit

linalg::Matrix
levelBatch(std::size_t rows, std::size_t cols, double level, Rng &rng)
{
    if (level >= 0.0)
        return activityBatch(rows, cols, level, rng);
    linalg::Matrix out(rows, cols);  // exactly one set bit per batch
    out(rows / 2, cols / 2) = 1.0f;
    return out;
}

} // namespace

TEST(SparseBitView, ExtractsSetBitsAscendingOnRaggedShapes)
{
    Rng rng(11);
    for (const std::size_t cols : {1u, 37u, 64u, 70u, 129u}) {
        const linalg::Matrix batch = activityBatch(5, cols, 0.3, rng);
        const linalg::BitMatrix bits = packRows(batch);
        linalg::SparseBitView view;
        view.build(bits);
        ASSERT_EQ(view.rows(), 5u);
        std::size_t total = 0;
        for (std::size_t r = 0; r < 5; ++r) {
            const std::uint32_t *idx = view.rowIndices(r);
            const std::size_t count = view.rowCount(r);
            total += count;
            std::size_t at = 0;
            for (std::size_t c = 0; c < cols; ++c)
                if (batch(r, c) != 0.0f) {
                    ASSERT_LT(at, count);
                    EXPECT_EQ(idx[at], c);
                    ++at;
                }
            EXPECT_EQ(at, count);  // nothing extra extracted
        }
        EXPECT_EQ(total, view.totalActive());
        EXPECT_EQ(total, linalg::countOnes(bits));
        EXPECT_EQ(total, linalg::countNonZero(batch));
    }
}

TEST(SparseKernels, ScalarAccumulateMatchesMaskedBitwise)
{
    const rbm::Rbm model = testModel(67, 35);
    Rng rng(13);
    for (const double level : kLevels) {
        const linalg::Matrix batch = levelBatch(1, 67, level, rng);
        linalg::BitVector bits;
        bits.packFrom(batch.row(0), 67);
        linalg::BitMatrix asMatrix = packRows(batch);
        linalg::SparseBitView view;
        view.build(asMatrix);

        linalg::Vector dense, sparse;
        linalg::accumulateRowsMasked(model.weights(), bits,
                                     model.hiddenBias(), dense);
        linalg::accumulateActiveRows(model.weights(), view.rowIndices(0),
                                     view.rowCount(0),
                                     model.hiddenBias(), sparse);
        EXPECT_EQ(dense, sparse);
    }
}

TEST(SparseKernels, FusedHalfSweepMatchesDenseBitwise)
{
    const rbm::Rbm model = testModel(70, 37);
    Rng rng(17);
    for (const double level : kLevels) {
        const linalg::Matrix batch = levelBatch(1, 70, level, rng);
        linalg::BitVector in;
        in.packFrom(batch.row(0), 70);

        Rng denseRng = Rng::stream(5, 0), sparseRng = Rng::stream(5, 0);
        linalg::BitVector outDense, outSparse;
        linalg::Vector meansDense, meansSparse;
        linalg::affineSigmoidBernoulli(model.weights(), in,
                                       model.hiddenBias(), outDense,
                                       meansDense, denseRng);
        linalg::affineSigmoidBernoulliSparse(model.weights(), in,
                                             model.hiddenBias(),
                                             outSparse, meansSparse,
                                             sparseRng);
        EXPECT_EQ(meansDense, meansSparse);
        for (std::size_t j = 0; j < 37; ++j)
            EXPECT_EQ(outDense.test(j), outSparse.test(j)) << j;
    }
}

TEST(SparseKernels, BatchTileMatchesDenseAcrossColumnRanges)
{
    const rbm::Rbm model = testModel(130, 65);
    Rng rng(19);
    for (const double level : kLevels) {
        const linalg::Matrix batch = levelBatch(7, 130, level, rng);
        const linalg::BitMatrix bits = packRows(batch);
        linalg::SparseBitView view;
        view.build(bits);

        linalg::Matrix dense(7, 65), sparse(7, 65);
        // Split the column range unevenly to cross the 128-wide
        // accumulator block boundary.
        for (const auto &[cb, ce] :
             std::vector<std::pair<std::size_t, std::size_t>>{
                 {0, 65}, {0, 40}, {40, 65}}) {
            linalg::accumulateBatchTile(model.weights(), bits,
                                        model.hiddenBias(), dense, 0, 7,
                                        cb, ce);
            linalg::accumulateActiveTile(model.weights(), view,
                                         model.hiddenBias(), sparse, 0,
                                         7, cb, ce);
            for (std::size_t r = 0; r < 7; ++r)
                for (std::size_t c = cb; c < ce; ++c)
                    ASSERT_EQ(dense(r, c), sparse(r, c))
                        << r << "," << c;
        }
    }
}

TEST(SparseKernels, GradientReduceMatchesDenseExactly)
{
    const std::size_t m = 67, n = 35, batch = 9;
    Rng rng(23);
    for (const double level : kLevels) {
        const linalg::Matrix vpos = levelBatch(batch, m, level, rng);
        const linalg::Matrix hpos =
            levelBatch(batch, n, level < 0 ? 0.4 : level, rng);
        const linalg::Matrix vneg = levelBatch(batch, m, 0.3, rng);
        const linalg::Matrix hneg = levelBatch(batch, n, 0.6, rng);

        linalg::BitMatrix posT, negT, hposT, hnegT;
        linalg::packTransposed(vpos, posT);
        linalg::packTransposed(vneg, negT);
        linalg::packTransposed(hpos, hposT);
        linalg::packTransposed(hneg, hnegT);
        linalg::Matrix dense(m, n);
        linalg::outerCountDiff(posT, hposT, negT, hnegT, dense, 0, m);

        linalg::SparseBitView vposV, hposV, vnegV, hnegV;
        const linalg::BitMatrix vposB = packRows(vpos),
                                hposB = packRows(hpos),
                                vnegB = packRows(vneg),
                                hnegB = packRows(hneg);
        vposV.build(vposB);
        hposV.build(hposB);
        vnegV.build(vnegB);
        hnegV.build(hnegB);
        linalg::Matrix sparse(m, n);
        // Two chunks, to cover the in-range index slicing.
        linalg::outerCountDiffSparse(vposV, hposV, vnegV, hnegV, sparse,
                                     0, m / 3);
        linalg::outerCountDiffSparse(vposV, hposV, vnegV, hnegV, sparse,
                                     m / 3, m);
        EXPECT_EQ(dense, sparse);

        linalg::Vector dbvDense(m), dbvSparse(m), tmp(m);
        linalg::rowCounts(posT, dbvDense.data());
        linalg::rowCounts(negT, tmp.data());
        for (std::size_t i = 0; i < m; ++i)
            dbvDense[i] -= tmp[i];
        linalg::columnCountDiffSparse(vposV, vnegV, dbvSparse.data(), m);
        EXPECT_EQ(dbvDense, dbvSparse);
    }
}

TEST(SparseDispatch, BackendPathsProduceIdenticalChains)
{
    const rbm::Rbm model = testModel(70, 37);
    exec::ThreadPool serial(1), threaded(4);
    Rng rng(29);
    for (const double level : kLevels) {
        const linalg::Matrix v = levelBatch(6, 70, level, rng);
        // Dispatcher boundary sweep: forced dense, forced sparse, the
        // calibrated default, and a threshold pinned exactly at this
        // batch's activity (<= comparisons make that the sparse side).
        const double activity =
            static_cast<double>(linalg::countNonZero(v)) /
            static_cast<double>(v.size());
        linalg::Matrix refH, refPh;
        bool first = true;
        for (const double threshold : {0.0, 1.0, -1.0, activity}) {
            for (exec::ThreadPool *pool : {&serial, &threaded}) {
                rbm::SamplingOptions opts;
                opts.sparseThreshold = threshold;
                const rbm::SoftwareGibbsBackend backend(model, pool,
                                                        opts);
                auto rngs = streams(6, 31);
                linalg::Matrix h, ph;
                backend.sampleHiddenBatch(v, h, ph, rngs.data());
                if (first) {
                    refH = h;
                    refPh = ph;
                    first = false;
                } else {
                    EXPECT_EQ(refH, h) << threshold;
                    EXPECT_EQ(refPh, ph) << threshold;
                }
            }
        }
    }
}

TEST(SparseDispatch, AnnealAndChunkingInvariant)
{
    const rbm::Rbm model = testModel(67, 35);
    exec::ThreadPool serial(1), threaded(4);
    Rng rng(37);
    const linalg::Matrix h0 = activityBatch(8, 35, 0.08, rng);

    linalg::Matrix refV, refH;
    bool first = true;
    for (const double threshold : {0.0, 1.0, -1.0}) {
        rbm::SamplingOptions opts;
        opts.sparseThreshold = threshold;
        for (exec::ThreadPool *pool : {&serial, &threaded}) {
            const rbm::SoftwareGibbsBackend backend(model, pool, opts);
            // Whole batch in one call...
            linalg::Matrix h = h0, v, pv, ph;
            auto rngs = streams(8, 41);
            backend.annealBatch(5, v, h, pv, ph, rngs.data());
            // ...must match the same chains annealed in two chunks
            // (each chunk re-probes activity independently).
            linalg::Matrix vChunks(8, 67), hChunks(8, 35);
            for (const auto &[b, e] :
                 std::vector<std::pair<std::size_t, std::size_t>>{
                     {0, 3}, {3, 8}}) {
                linalg::Matrix hc(e - b, 35), vc, pvc, phc;
                for (std::size_t r = b; r < e; ++r)
                    std::copy_n(h0.row(r), 35, hc.row(r - b));
                auto chunkRngs = streams(8, 41);
                // Row r's stream must travel with the row.
                std::vector<Rng> sub(chunkRngs.begin() + b,
                                     chunkRngs.begin() + e);
                backend.annealBatch(5, vc, hc, pvc, phc, sub.data());
                for (std::size_t r = b; r < e; ++r) {
                    std::copy_n(vc.row(r - b), 67, vChunks.row(r));
                    std::copy_n(hc.row(r - b), 35, hChunks.row(r));
                }
            }
            EXPECT_EQ(v, vChunks) << threshold;
            EXPECT_EQ(h, hChunks) << threshold;
            if (first) {
                refV = v;
                refH = h;
                first = false;
            } else {
                EXPECT_EQ(refV, v) << threshold;
                EXPECT_EQ(refH, h) << threshold;
            }
        }
    }
}

TEST(SparseDispatch, ScalarAnnealMatchesAcrossThresholds)
{
    const rbm::Rbm model = testModel(70, 37);
    linalg::Vector refV, refH;
    bool first = true;
    for (const double threshold : {0.0, 1.0, -1.0}) {
        rbm::SamplingOptions opts;
        opts.sparseThreshold = threshold;
        const rbm::SoftwareGibbsBackend backend(model, nullptr, opts);
        Rng rng(43);
        linalg::Vector v, h(37), pv, ph;
        h[3] = 1.0f;  // near-empty start: the sparse side of the probe
        backend.anneal(6, v, h, pv, ph, rng);
        if (first) {
            refV = v;
            refH = h;
            first = false;
        } else {
            EXPECT_EQ(refV, v) << threshold;
            EXPECT_EQ(refH, h) << threshold;
        }
    }
}

TEST(SparseDispatch, CdTrainingBitIdenticalAcrossPathsAndWorkers)
{
    Rng dataRng(47);
    data::Dataset train;
    train.name = "sparse-cd";
    train.samples = activityBatch(60, 67, 0.06, dataRng);

    exec::ThreadPool serial(1), threaded(4);
    rbm::Rbm reference;
    bool first = true;
    for (const double threshold : {0.0, 1.0, -1.0}) {
        for (exec::ThreadPool *pool : {&serial, &threaded}) {
            rbm::Rbm model = testModel(67, 35, 7);
            rbm::CdConfig cfg;
            cfg.batchSize = 20;
            cfg.k = 2;
            cfg.momentum = 0.5;
            cfg.pool = pool;
            cfg.sampling.sparseThreshold = threshold;
            Rng rng(51);
            rbm::CdTrainer trainer(model, cfg, rng);
            trainer.trainEpoch(train);
            trainer.trainEpoch(train);
            if (first) {
                reference = model;
                first = false;
            } else {
                EXPECT_EQ(reference.weights(), model.weights())
                    << threshold;
                EXPECT_EQ(reference.visibleBias(), model.visibleBias())
                    << threshold;
                EXPECT_EQ(reference.hiddenBias(), model.hiddenBias())
                    << threshold;
            }
        }
    }
}
