/**
 * @file
 * train::Session tests: the resume-determinism contract (training N
 * epochs in one run is bit-identical to training k, checkpointing and
 * resuming for N-k) for every model family at worker counts 1 and 4,
 * plus schedule ramps, the capability table and monitor integration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <sstream>

#include "data/bars.hpp"
#include "data/ratings.hpp"
#include "exec/thread_pool.hpp"
#include "rbm/monitor.hpp"
#include "train/strategies.hpp"

using namespace ising;

namespace {

constexpr int kTotalEpochs = 6;
constexpr int kSplitEpochs = 4;

data::Dataset
barsData(std::size_t samples = 48)
{
    util::Rng rng(7);
    return data::makeBarsAndStripes(4, samples, rng);
}

data::RatingData
smallRatings()
{
    data::RatingStyle style;
    style.numUsers = 20;
    style.numItems = 12;
    style.density = 0.4;
    return data::makeRatings(style, 99);
}

train::Schedule
schedule(int epochs)
{
    train::Schedule s;
    s.epochs = epochs;
    s.learningRate = train::Ramp(0.1, 0.05);  // exercise the ramp
    s.momentum = train::Ramp(0.4);            // exercise momentum state
    return s;
}

train::SessionConfig
config(int epochs, rbm::TrainingMonitor *monitor = nullptr)
{
    train::SessionConfig cfg;
    cfg.schedule = schedule(epochs);
    cfg.seed = 21;
    cfg.backendTag = "cd";
    cfg.monitor = monitor;
    return cfg;
}

std::string
archiveOf(const train::Session &session)
{
    std::ostringstream os;
    rbm::saveCheckpoint(session.checkpoint(), os);
    return os.str();
}

using StrategyMaker =
    std::function<std::unique_ptr<train::Strategy>(exec::ThreadPool *)>;

/**
 * The core contract: run kTotalEpochs straight; run kSplitEpochs,
 * serialize, rebuild a fresh strategy, resume, finish; the two final
 * archives must match byte for byte -- and must not depend on the
 * worker count.
 */
std::string
fullVsResumedArchive(const StrategyMaker &make, exec::ThreadPool *pool)
{
    train::Session full(make(pool), config(kTotalEpochs));
    full.run();
    const std::string fullArchive = archiveOf(full);

    // Interrupt the same schedule after kSplitEpochs (ramps keep the
    // full-schedule shape, exactly like a killed long run).
    train::Session head(make(pool), config(kTotalEpochs));
    head.run(kSplitEpochs);
    std::istringstream saved(archiveOf(head));
    const rbm::Checkpoint ckpt = rbm::loadCheckpoint(saved);
    EXPECT_EQ(ckpt.meta.epoch, kSplitEpochs);

    train::Session tail(make(pool), config(kTotalEpochs));
    tail.resume(ckpt);
    EXPECT_EQ(tail.epochsDone(), kSplitEpochs);
    tail.run();
    EXPECT_EQ(archiveOf(tail), fullArchive);
    return fullArchive;
}

void
expectResumeDeterminism(const StrategyMaker &make)
{
    exec::ThreadPool one(1), four(4);
    const std::string serial = fullVsResumedArchive(make, &one);
    const std::string threaded = fullVsResumedArchive(make, &four);
    EXPECT_EQ(serial, threaded);
}

} // namespace

// ------------------------------------------- per-family determinism

TEST(SessionResume, RbmCdIsBitIdentical)
{
    const data::Dataset train = barsData();
    expectResumeDeterminism([&](exec::ThreadPool *pool) {
        train::TrainOptions options;
        options.batchSize = 16;
        options.seed = 21;
        options.pool = pool;
        util::Rng rng(21);
        rbm::Rbm model(train.dim(), 8);
        model.initRandom(rng);
        return train::makeRbmStrategy(std::move(model), train, options);
    });
}

TEST(SessionResume, RbmPcdCarriesParticles)
{
    const data::Dataset train = barsData();
    expectResumeDeterminism([&](exec::ThreadPool *pool) {
        train::TrainOptions options;
        options.batchSize = 16;
        options.persistentCd = true;
        options.cdParticles = 6;
        options.seed = 21;
        options.pool = pool;
        util::Rng rng(21);
        rbm::Rbm model(train.dim(), 8);
        model.initRandom(rng);
        return train::makeRbmStrategy(std::move(model), train, options);
    });
}

TEST(SessionResume, RbmGsIsBitIdentical)
{
    const data::Dataset train = barsData();
    expectResumeDeterminism([&](exec::ThreadPool *pool) {
        train::TrainOptions options;
        options.trainer = train::Trainer::GibbsSampler;
        options.batchSize = 16;
        options.noise = {0.05, 0.05};
        options.seed = 21;
        options.pool = pool;
        util::Rng rng(21);
        rbm::Rbm model(train.dim(), 8);
        model.initRandom(rng);
        return train::makeRbmStrategy(std::move(model), train, options);
    });
}

TEST(SessionResume, RbmBgfFleetIsBitIdentical)
{
    const data::Dataset train = barsData();
    expectResumeDeterminism([&](exec::ThreadPool *pool) {
        train::TrainOptions options;
        options.trainer = train::Trainer::Bgf;
        options.bgfReplicas = 2;
        options.bgfParticles = 4;
        options.bgfPumpStep = 0.01;
        options.bgfAnnealSteps = 2;
        options.seed = 21;
        options.pool = pool;
        util::Rng rng(21);
        rbm::Rbm model(train.dim(), 8);
        model.initRandom(rng);
        return train::makeRbmStrategy(std::move(model), train, options);
    });
}

TEST(SessionResume, ClassRbmIsBitIdentical)
{
    const data::Dataset train = barsData();
    ASSERT_FALSE(train.labels.empty());
    expectResumeDeterminism([&](exec::ThreadPool *pool) {
        train::TrainOptions options;
        options.batchSize = 16;
        options.seed = 21;
        options.pool = pool;
        util::Rng rng(21);
        rbm::ClassRbm model(train.dim(), train.numClasses, 6);
        model.initRandom(rng);
        return train::makeClassRbmStrategy(std::move(model), train,
                                           options);
    });
}

TEST(SessionResume, CfRbmIsBitIdentical)
{
    const data::RatingData corpus = smallRatings();
    expectResumeDeterminism([&](exec::ThreadPool *pool) {
        train::TrainOptions options;
        options.seed = 21;
        options.pool = pool;
        util::Rng rng(21);
        rbm::CfRbm model(corpus.numUsers, corpus.numStars, 6);
        model.initFromData(corpus, rng);
        return train::makeCfRbmStrategy(std::move(model), corpus,
                                        options);
    });
}

TEST(SessionResume, ConvRbmIsBitIdentical)
{
    const data::Dataset train = barsData();
    expectResumeDeterminism([&](exec::ThreadPool *pool) {
        train::TrainOptions options;
        options.seed = 21;
        options.pool = pool;
        rbm::ConvRbmConfig cfg;
        cfg.imageSide = 4;
        cfg.filterSide = 3;
        cfg.numFilters = 2;
        cfg.poolGrid = 2;
        rbm::ConvRbm model(cfg);
        util::Rng rng(21);
        model.initRandom(rng);
        return train::makeConvRbmStrategy(std::move(model), train,
                                          options);
    });
}

TEST(SessionResume, DbnIsBitIdentical)
{
    const data::Dataset train = barsData();
    // 6 total epochs over a 2-layer stack = 3 per layer; the split at
    // epoch 4 lands mid-layer-1, exercising sub-engine state restore.
    expectResumeDeterminism([&](exec::ThreadPool *pool) {
        train::TrainOptions options;
        options.batchSize = 16;
        options.persistentCd = true;
        options.cdParticles = 4;
        options.seed = 21;
        options.pool = pool;
        rbm::Dbn model({train.dim(), 8, 6});
        util::Rng rng(21);
        model.initRandom(rng);
        return train::makeDbnStrategy(std::move(model), train, options,
                                      kTotalEpochs / 2);
    });
}

TEST(SessionResume, DbmIsBitIdentical)
{
    const data::Dataset train = barsData();
    expectResumeDeterminism([&](exec::ThreadPool *pool) {
        train::TrainOptions options;
        options.seed = 21;
        options.pool = pool;
        rbm::DbmConfig cfg;
        cfg.batchSize = 16;
        cfg.numChains = 6;
        cfg.pretrainEpochs = 1;
        rbm::Dbm model(train.dim(), 6, 4);
        util::Rng rng(21);
        model.initRandom(rng);
        return train::makeDbmStrategy(std::move(model), train, options,
                                      cfg);
    });
}

// ------------------------------------------------- resume fallbacks

TEST(SessionResume, MissingChainSectionWarnsAndContinues)
{
    const data::Dataset train = barsData();
    train::TrainOptions options;
    options.batchSize = 16;
    options.persistentCd = true;
    options.seed = 21;
    util::Rng rng(21);
    rbm::Rbm model(train.dim(), 8);
    model.initRandom(rng);

    train::Session head(
        train::makeRbmStrategy(model, train, options),
        config(kSplitEpochs));
    head.run();
    rbm::Checkpoint ckpt = head.checkpoint();
    ckpt.train.reset();  // a pre-session archive without chain state

    train::Session tail(
        train::makeRbmStrategy(model, train, options),
        config(kTotalEpochs));
    tail.resume(ckpt);  // warns, does not die
    tail.run();
    EXPECT_EQ(tail.epochsDone(), kTotalEpochs);
}

TEST(SessionResume, EarlyStoppedArchiveResumesAsNoOp)
{
    const data::Dataset train = barsData();
    train::TrainOptions options;
    options.seed = 21;
    util::Rng rng(21);
    rbm::Rbm model(train.dim(), 8);
    model.initRandom(rng);

    train::Session head(train::makeRbmStrategy(model, train, options),
                        config(kSplitEpochs));
    head.run();
    rbm::Checkpoint ckpt = head.checkpoint();
    EXPECT_EQ(ckpt.meta.earlyStopEpoch, -1);
    // Stamp the stop epoch the way the monitor-driven stop would have.
    ckpt.meta.earlyStopEpoch = kSplitEpochs;

    train::Session tail(train::makeRbmStrategy(model, train, options),
                        config(kTotalEpochs));
    tail.resume(ckpt);
    EXPECT_EQ(tail.earlyStopEpoch(), kSplitEpochs);
    const std::string before = archiveOf(tail);
    tail.run();  // warns and returns without training
    EXPECT_EQ(tail.epochsDone(), kSplitEpochs);
    EXPECT_EQ(archiveOf(tail), before);
}

TEST(SessionResumeDeathTest, SeedMismatchIsFatal)
{
    // Worker threads from earlier tests make fork()-style death tests
    // unsafe; re-spawn the binary instead.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const data::Dataset train = barsData();
    train::TrainOptions options;
    options.seed = 21;
    util::Rng rng(21);
    rbm::Rbm model(train.dim(), 8);
    model.initRandom(rng);

    rbm::Checkpoint ckpt;
    ckpt.meta.seed = 99;  // session seed is 21
    ckpt.meta.epoch = kSplitEpochs;
    ckpt.model = model;

    train::Session tail(train::makeRbmStrategy(model, train, options),
                        config(kTotalEpochs));
    EXPECT_DEATH(tail.resume(ckpt), "seed mismatch");
}

TEST(SessionResumeDeathTest, FamilyMismatchIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const data::Dataset train = barsData();
    train::TrainOptions options;
    options.seed = 21;
    util::Rng rng(21);
    rbm::Rbm model(train.dim(), 8);
    model.initRandom(rng);
    train::Session session(
        train::makeRbmStrategy(model, train, options),
        config(kTotalEpochs));

    rbm::Checkpoint ckpt;
    ckpt.meta.seed = 21;
    ckpt.model = rbm::Dbm(4, 3, 2);
    EXPECT_DEATH(session.resume(ckpt), "cannot resume");
}

// -------------------------------------------------- capability table

TEST(Capabilities, TableMatchesFamilies)
{
    using rbm::ModelFamily;
    using train::Trainer;
    EXPECT_TRUE(train::supports(ModelFamily::Rbm, Trainer::Bgf));
    EXPECT_TRUE(train::supports(ModelFamily::Dbn, Trainer::GibbsSampler));
    EXPECT_TRUE(train::supports(ModelFamily::CfRbm, Trainer::Bgf));
    EXPECT_FALSE(train::supports(ModelFamily::ClassRbm, Trainer::Bgf));
    EXPECT_FALSE(train::supports(ModelFamily::ConvRbm,
                                 Trainer::GibbsSampler));
    EXPECT_FALSE(train::supports(ModelFamily::Dbm, Trainer::Bgf));
    EXPECT_EQ(train::supportedTrainerNames(ModelFamily::Rbm),
              "cd, gs, bgf");
    EXPECT_NE(train::unsupportedMessage(ModelFamily::Dbm, Trainer::Bgf)
                  .find("supported: cd"),
              std::string::npos);
}

TEST(CapabilitiesDeathTest, MakerRejectsUnsupportedCombo)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const data::Dataset train = barsData();
    train::TrainOptions options;
    options.trainer = train::Trainer::Bgf;
    util::Rng rng(21);
    rbm::ClassRbm model(train.dim(), train.numClasses, 6);
    model.initRandom(rng);
    EXPECT_DEATH(
        train::makeClassRbmStrategy(std::move(model), train, options),
        "does not support trainer");
}

// ------------------------------------------------ schedule + monitor

TEST(Schedule, RampsLinearlyAndClampsK)
{
    train::Schedule s;
    s.epochs = 5;
    s.learningRate = train::Ramp(0.1, 0.02);
    s.kStart = 1;
    s.kEnd = 9;
    EXPECT_DOUBLE_EQ(s.at(0).learningRate, 0.1);
    EXPECT_DOUBLE_EQ(s.at(4).learningRate, 0.02);
    EXPECT_NEAR(s.at(2).learningRate, 0.06, 1e-12);
    EXPECT_EQ(s.at(0).k, 1);
    EXPECT_EQ(s.at(2).k, 5);
    EXPECT_EQ(s.at(4).k, 9);

    train::Schedule single;
    single.epochs = 1;
    single.learningRate = train::Ramp(0.3, 0.1);
    EXPECT_DOUBLE_EQ(single.at(0).learningRate, 0.3);
}

TEST(Monitor, SessionCollectsPerLayerRecordsAndCsv)
{
    const data::Dataset train = barsData();
    rbm::TrainingMonitor monitor(train, train);

    train::TrainOptions options;
    options.batchSize = 16;
    options.seed = 21;
    rbm::Dbn model({train.dim(), 6, 4});
    util::Rng rng(21);
    model.initRandom(rng);

    train::SessionConfig cfg = config(4, &monitor);
    train::Session session(
        train::makeDbnStrategy(std::move(model), train, options, 2),
        std::move(cfg));
    session.run();

    // Epochs 2-3 train layer 1: those records include a layer-1 row.
    ASSERT_FALSE(monitor.records().empty());
    bool sawLayer1 = false;
    for (const auto &rec : monitor.records())
        sawLayer1 |= rec.layer == 1;
    EXPECT_TRUE(sawLayer1);

    std::ostringstream csv;
    monitor.writeCsv(csv);
    const std::string text = csv.str();
    EXPECT_NE(text.find("epoch,layer"), std::string::npos);
    // Header + one line per record.
    const auto lines =
        std::count(text.begin(), text.end(), '\n');
    EXPECT_EQ(lines,
              static_cast<long>(monitor.records().size()) + 1);
}

TEST(Monitor, ObserveWeightsRecordsFamilyMetric)
{
    const data::Dataset train = barsData();
    rbm::TrainingMonitor monitor(train, train);
    linalg::Matrix w(3, 4);
    w.fill(2.5f);
    const auto &rec = monitor.observeWeights(3, 1, w, 0.75);
    EXPECT_EQ(rec.epoch, 3);
    EXPECT_EQ(rec.layer, 1);
    EXPECT_DOUBLE_EQ(rec.reconstructionError, 0.75);
    EXPECT_NEAR(rec.weightRms, 2.5, 1e-6);
    EXPECT_DOUBLE_EQ(rec.saturationFrac, 1.0);  // all above 1.99
}
