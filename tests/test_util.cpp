/**
 * @file
 * Tests for the CLI parser, logging levels and stopwatch.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

using namespace ising::util;

namespace {

/** Build a mutable argv from string literals. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : storage_(std::move(args))
    {
        for (auto &s : storage_)
            ptrs_.push_back(s.data());
    }
    int argc() const { return static_cast<int>(ptrs_.size()); }
    char **argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> storage_;
    std::vector<char *> ptrs_;
};

} // namespace

TEST(Cli, ParsesSpaceSeparatedValues)
{
    Argv a({"prog", "--name", "value", "--count", "7"});
    CliArgs args(a.argc(), a.argv());
    EXPECT_TRUE(args.has("name"));
    EXPECT_EQ(args.get("name", ""), "value");
    EXPECT_EQ(args.getInt("count", 0), 7);
}

TEST(Cli, ParsesEqualsSyntax)
{
    Argv a({"prog", "--rate=0.25", "--label=xyz"});
    CliArgs args(a.argc(), a.argv());
    EXPECT_DOUBLE_EQ(args.getDouble("rate", 0.0), 0.25);
    EXPECT_EQ(args.get("label", ""), "xyz");
}

TEST(Cli, BooleanFlags)
{
    Argv a({"prog", "--verbose", "--fast=false", "--slow=1"});
    CliArgs args(a.argc(), a.argv());
    EXPECT_TRUE(args.getBool("verbose", false));
    EXPECT_FALSE(args.getBool("fast", true));
    EXPECT_TRUE(args.getBool("slow", false));
    EXPECT_TRUE(args.getBool("absent", true));
    EXPECT_FALSE(args.getBool("absent", false));
}

TEST(Cli, DefaultsWhenMissingOrMalformed)
{
    Argv a({"prog", "--count", "notanumber"});
    CliArgs args(a.argc(), a.argv());
    EXPECT_EQ(args.getInt("count", 42), 42);
    EXPECT_EQ(args.getInt("missing", -1), -1);
    EXPECT_DOUBLE_EQ(args.getDouble("missing", 1.5), 1.5);
}

TEST(Cli, PositionalArgumentsPreserved)
{
    Argv a({"prog", "input.txt", "--flag", "v", "more.txt"});
    CliArgs args(a.argc(), a.argv());
    ASSERT_EQ(args.positional().size(), 3u);
    EXPECT_EQ(args.positional()[0], "prog");
    EXPECT_EQ(args.positional()[1], "input.txt");
    EXPECT_EQ(args.positional()[2], "more.txt");
}

TEST(Cli, NegativeNumbersAsValues)
{
    Argv a({"prog", "--offset=-3"});
    CliArgs args(a.argc(), a.argv());
    EXPECT_EQ(args.getInt("offset", 0), -3);
}

TEST(Logging, LevelThresholding)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    // Messages below the threshold are simply dropped (no crash).
    debug("dropped");
    inform("dropped");
    warn("shown (stderr)");
    setLogLevel(saved);
}

TEST(Logging, StrcatJoinsArbitraryTypes)
{
    EXPECT_EQ(strcat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(strcat(), "");
}

TEST(Stopwatch, MeasuresElapsedTime)
{
    Stopwatch sw;
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    const double s = sw.seconds();
    EXPECT_GE(s, 0.010);
    EXPECT_LT(s, 3.0);
    EXPECT_NEAR(sw.milliseconds(), sw.seconds() * 1e3,
                sw.seconds() * 50);
}

TEST(Stopwatch, ResetRestartsWindow)
{
    Stopwatch sw;
    std::this_thread::sleep_for(std::chrono::milliseconds(12));
    sw.reset();
    EXPECT_LT(sw.seconds(), 0.010);
}
